"""Ternary values and words.

A TCAM bit stores one of three states: ``0``, ``1`` or ``X`` (don't care).
A *stored* ``X`` matches any search bit; a *search* ``X`` (masked search
column) matches any stored bit.  This module implements that algebra plus
the integer encoding used by the vectorized array core:

====== =========
value  encoding
====== =========
``0``  0
``1``  1
``X``  2
====== =========
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..errors import TCAMError


_TRIT_CODES = np.array([0, 1, 2], dtype=np.int8)


class Trit(enum.IntEnum):
    """One ternary symbol."""

    ZERO = 0
    ONE = 1
    X = 2

    @classmethod
    def from_char(cls, char: str) -> "Trit":
        """Parse ``'0'``, ``'1'``, ``'x'`` or ``'X'``.

        >>> Trit.from_char('x') is Trit.X
        True
        """
        table = {"0": cls.ZERO, "1": cls.ONE, "x": cls.X, "X": cls.X}
        try:
            return table[char]
        except KeyError:
            raise TCAMError(f"invalid trit character {char!r}") from None

    def to_char(self) -> str:
        """Render as ``'0'``, ``'1'`` or ``'X'``."""
        return {Trit.ZERO: "0", Trit.ONE: "1", Trit.X: "X"}[self]

    def matches(self, other: "Trit") -> bool:
        """Ternary match: X matches everything, otherwise exact equality."""
        if self is Trit.X or other is Trit.X:
            return True
        return self is other


class TernaryWord(Sequence[Trit]):
    """An immutable fixed-width sequence of trits.

    Construct from any iterable of :class:`Trit` (or 0/1/2 integers), or via
    :func:`word_from_string`.

    >>> w = word_from_string("10X")
    >>> w.matches(word_from_string("101"))
    True
    >>> str(w)
    '10X'
    """

    __slots__ = ("_data",)

    def __init__(self, trits: Iterable[Trit | int]) -> None:
        if isinstance(trits, np.ndarray) and trits.dtype == np.int8 and trits.ndim == 1:
            # Fast path for the hot workload constructors: one vectorized
            # validation instead of a per-trit Python loop.
            if trits.size == 0:
                raise TCAMError("a ternary word must have at least one trit")
            if not np.isin(trits, _TRIT_CODES).all():
                bad = trits[~np.isin(trits, _TRIT_CODES)][0]
                raise TCAMError(f"invalid trit value {bad!r}")
            self._data = trits.copy()
        else:
            values = []
            for t in trits:
                v = int(t)
                if v not in (0, 1, 2):
                    raise TCAMError(f"invalid trit value {t!r}")
                values.append(v)
            if not values:
                raise TCAMError("a ternary word must have at least one trit")
            self._data = np.array(values, dtype=np.int8)
        self._data.setflags(write=False)

    # -- Sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return int(self._data.size)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return TernaryWord(self._data[index])
        return Trit(int(self._data[index]))

    def __iter__(self) -> Iterator[Trit]:
        return (Trit(int(v)) for v in self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TernaryWord):
            return NotImplemented
        return len(self) == len(other) and bool(np.all(self._data == other._data))

    def __hash__(self) -> int:
        return hash(self._data.tobytes())

    def __repr__(self) -> str:
        return f"TernaryWord('{self}')"

    def __str__(self) -> str:
        return "".join(Trit(int(v)).to_char() for v in self._data)

    # -- TCAM algebra ------------------------------------------------------

    def as_array(self) -> np.ndarray:
        """Return the int8 encoding (read-only view)."""
        return self._data

    def matches(self, key: "TernaryWord") -> bool:
        """True when every column matches under ternary semantics."""
        return self.mismatch_count(key) == 0

    def mismatch_count(self, key: "TernaryWord") -> int:
        """Number of mismatching (conducting) columns against ``key``."""
        if len(key) != len(self):
            raise TCAMError(
                f"width mismatch: stored {len(self)} vs key {len(key)}"
            )
        return int(mismatch_counts(self._data[np.newaxis, :], key.as_array())[0])

    def x_count(self) -> int:
        """Number of don't-care columns."""
        return int(np.count_nonzero(self._data == int(Trit.X)))

    def specificity(self) -> int:
        """Number of specified (non-X) columns -- the LPM tie-breaker."""
        return len(self) - self.x_count()

    def with_trit(self, index: int, trit: Trit) -> "TernaryWord":
        """Return a copy with one column replaced."""
        data = self._data.copy()
        data[index] = int(trit)
        return TernaryWord(data)


def mismatch_counts(stored: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Vectorized per-row mismatch counts.

    Args:
        stored: ``(rows, cols)`` int8 matrix of trit encodings.
        key: ``(cols,)`` int8 vector of trit encodings.

    Returns:
        ``(rows,)`` int array: number of columns in each row where neither
        side is X and the values differ -- i.e. the number of conducting
        pull-down cells on that row's match line.
    """
    stored = np.asarray(stored)
    key = np.asarray(key)
    if stored.ndim != 2 or key.ndim != 1 or stored.shape[1] != key.shape[0]:
        raise TCAMError(
            f"shape mismatch: stored {stored.shape} vs key {key.shape}"
        )
    x_code = int(Trit.X)
    relevant = (stored != x_code) & (key != x_code)[np.newaxis, :]
    differs = stored != key[np.newaxis, :]
    return np.count_nonzero(relevant & differs, axis=1)


def pack_keys(keys: Iterable[TernaryWord]) -> np.ndarray:
    """Stack search keys into one ``(n_keys, cols)`` int8 matrix.

    All keys must share a width; the batched search engine compares the
    whole stack against the stored matrix in one broadcasted pass.
    """
    arrays = [k.as_array() for k in keys]
    if not arrays:
        raise TCAMError("a key batch must contain at least one key")
    width = arrays[0].shape[0]
    for a in arrays[1:]:
        if a.shape[0] != width:
            raise TCAMError(
                f"all keys in a batch must share a width; got {a.shape[0]} vs {width}"
            )
    # concatenate + reshape beats np.stack ~3x on large batches of small
    # per-key vectors (one bulk copy instead of per-array axis insertion).
    return np.concatenate(arrays).reshape(len(arrays), width)


def mismatch_counts_batch(stored: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Broadcasted mismatch counts for a whole key batch.

    Args:
        stored: ``(rows, cols)`` int8 matrix of trit encodings.
        keys: ``(n_keys, cols)`` int8 matrix of search keys.

    Returns:
        ``(n_keys, rows)`` int array of per-row conducting-cell counts,
        one row of the result per key (``result[k]`` equals
        :func:`mismatch_counts` of ``keys[k]``).
    """
    stored = np.asarray(stored)
    keys = np.asarray(keys)
    if stored.ndim != 2 or keys.ndim != 2 or stored.shape[1] != keys.shape[1]:
        raise TCAMError(
            f"shape mismatch: stored {stored.shape} vs keys {keys.shape}"
        )
    x_code = int(Trit.X)
    # (n_keys, rows, cols) broadcast: neither side X and the values differ.
    relevant = (stored[np.newaxis, :, :] != x_code) & (keys[:, np.newaxis, :] != x_code)
    differs = stored[np.newaxis, :, :] != keys[:, np.newaxis, :]
    return np.count_nonzero(relevant & differs, axis=2)


# Per-column (SL, SLB) drive packed as ``sl*2 + slb``, indexed by trit code:
# searching 0 raises SL (code 2), searching 1 raises SLB (code 1), X neither.
_DRIVE_CODE_BY_TRIT = np.array([2, 1, 0], dtype=np.int8)


def drive_matrix(keys: np.ndarray) -> np.ndarray:
    """Packed (SL, SLB) drive codes for a stacked key batch.

    ``drive_matrix(pack_keys(keys))[k]`` equals ``drive_vector(keys[k])``
    elementwise; the batched search engine XORs consecutive rows to count
    search-line toggles for the whole batch at once.
    """
    keys = np.asarray(keys)
    return _DRIVE_CODE_BY_TRIT[keys]


def word_from_string(text: str) -> TernaryWord:
    """Parse a word like ``"10XX01"``.

    >>> word_from_string("1X0").x_count()
    1
    """
    if not text:
        raise TCAMError("empty word string")
    return TernaryWord(Trit.from_char(c) for c in text)


def word_from_int(value: int, width: int) -> TernaryWord:
    """Binary word (no X) from an unsigned integer, MSB first.

    >>> str(word_from_int(5, 4))
    '0101'
    """
    if width < 1:
        raise TCAMError(f"width must be >= 1, got {width}")
    if value < 0 or value >= (1 << width):
        raise TCAMError(f"value {value} does not fit in {width} bits")
    if width <= 62:
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        return TernaryWord(((value >> shifts) & 1).astype(np.int8))
    return TernaryWord((value >> (width - 1 - i)) & 1 for i in range(width))


def prefix_word(value: int, prefix_len: int, width: int) -> TernaryWord:
    """Prefix pattern: ``prefix_len`` specified MSBs, the rest X.

    This is the TCAM image of an IP route ``value/prefix_len``.

    >>> str(prefix_word(0b1010, 2, 4))
    '10XX'
    """
    if not 0 <= prefix_len <= width:
        raise TCAMError(f"prefix length {prefix_len} outside [0, {width}]")
    data = word_from_int(value, width).as_array().copy()
    data[prefix_len:] = int(Trit.X)
    return TernaryWord(data)


def random_word(
    width: int,
    rng: np.random.Generator,
    x_fraction: float = 0.0,
) -> TernaryWord:
    """Draw a random ternary word.

    Args:
        width: Number of columns.
        rng: Random generator.
        x_fraction: Probability that each column is X (don't care).
    """
    if width < 1:
        raise TCAMError(f"width must be >= 1, got {width}")
    if not 0.0 <= x_fraction <= 1.0:
        raise TCAMError(f"x_fraction must be in [0, 1], got {x_fraction}")
    bits = rng.integers(0, 2, size=width)
    xs = rng.random(width) < x_fraction
    return TernaryWord(np.where(xs, int(Trit.X), bits).astype(np.int8))


def sl_drive(search_trit: Trit) -> tuple[int, int]:
    """Search-line drive pair (SL, SLB) for a search symbol.

    Convention (NOR cell): searching ``0`` raises SL (the "detect stored-1"
    line), searching ``1`` raises SLB, searching ``X`` raises neither so the
    column cannot discharge any match line.

    >>> sl_drive(Trit.ZERO)
    (1, 0)
    >>> sl_drive(Trit.X)
    (0, 0)
    """
    if search_trit is Trit.ZERO:
        return (1, 0)
    if search_trit is Trit.ONE:
        return (0, 1)
    return (0, 0)


def drive_vector(key: TernaryWord) -> tuple[int, ...]:
    """Pack each column's (SL, SLB) drive into two bits for toggle counting."""
    return tuple(sl * 2 + slb for sl, slb in (sl_drive(t) for t in key))


def nand_sl_drive(search_trit: Trit) -> tuple[int, int]:
    """Search-line drive pair for the NAND (series) cell polarity.

    In a NAND string every cell must *conduct* on a match, so a masked
    search column raises both lines (any healthy cell passes), and a
    specified symbol raises the line gating its match device.

    >>> nand_sl_drive(Trit.X)
    (1, 1)
    >>> nand_sl_drive(Trit.ZERO)
    (1, 0)
    """
    if search_trit is Trit.ZERO:
        return (1, 0)
    if search_trit is Trit.ONE:
        return (0, 1)
    return (1, 1)


def nand_drive_vector(key: TernaryWord) -> tuple[int, ...]:
    """Packed (SL, SLB) drive for a NAND search key."""
    return tuple(sl * 2 + slb for sl, slb in (nand_sl_drive(t) for t in key))
