"""Weighted-distance (analog) TCAM array on MLC FeFET cells.

Each stored cell carries a ternary value *and* an integer weight; a
mismatching cell sinks a pull-down current that grows with its weight.
A searched row's match line therefore discharges at a rate proportional
to the row's *weighted* mismatch count, and the time its line crosses
the sense reference is a monotone analog readout of the weighted
Hamming distance -- time-domain in-memory similarity search.

:meth:`WeightedTCAMArray.distance_search` reports every row's crossing
time plus the best (slowest-crossing) row, and the test suite checks the
crossing-time order agrees with the software-computed weighted distances
-- the property that makes the analog readout usable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.rc import discharge_time
from ..circuits.wire import M2_WIRE
from ..energy.accounting import EnergyComponent, EnergyLedger
from ..errors import TCAMError
from .area import cell_dimensions
from .array import ArrayGeometry
from .cells.fefet_mlc import MLCFeFETCell
from .trit import TernaryWord, Trit


@dataclass(frozen=True)
class DistanceSearchOutcome:
    """Result of one weighted-distance search.

    Attributes:
        crossing_times: Per-row time for the ML to cross the reference
            [s]; ``inf`` for rows with zero weighted mismatch (they only
            droop) and for invalid rows.
        distances: Software-computed weighted distances (the oracle).
        best_row: Row with the largest crossing time among valid rows
            (i.e. the smallest weighted distance), or ``None``.
        energy: Energy ledger for the operation [J].
    """

    crossing_times: np.ndarray
    distances: np.ndarray
    best_row: int | None
    energy: EnergyLedger


class WeightedTCAMArray:
    """Rows x cols MLC-FeFET array searched by weighted distance.

    Args:
        geometry: Array shape.
        cell: MLC cell descriptor.
        vdd: Supply / precharge voltage [V].
        v_sense: Crossing reference for the time-domain readout [V].
    """

    def __init__(
        self,
        geometry: ArrayGeometry,
        cell: MLCFeFETCell | None = None,
        vdd: float | None = None,
        v_sense: float | None = None,
    ) -> None:
        self.geometry = geometry
        self.cell = cell if cell is not None else MLCFeFETCell()
        self.vdd = vdd if vdd is not None else geometry.node.vdd_nominal
        self.v_sense = v_sense if v_sense is not None else 0.5 * self.vdd
        if not 0.0 < self.v_sense < self.vdd:
            raise TCAMError(f"v_sense {self.v_sense} V outside (0, vdd)")

        rows, cols = geometry.rows, geometry.cols
        self._stored = np.full((rows, cols), int(Trit.X), dtype=np.int8)
        self._weights = np.ones((rows, cols), dtype=np.int16)
        self._valid = np.zeros(rows, dtype=bool)

        cell_w, _ = cell_dimensions(self.cell.area_f2, geometry.node)
        self.c_ml = (
            cols * self.cell.c_ml_per_cell
            + M2_WIRE.capacitance(cols * cell_w)
            + 0.3e-15  # sense/timing front-end
        )

    # ------------------------------------------------------------------

    def write(self, row: int, word: TernaryWord, weights: np.ndarray) -> EnergyLedger:
        """Store a word with per-cell weights.

        Args:
            row: Target row.
            word: Ternary values.
            weights: Integer strength levels in ``[1, n_levels]``, one per
                column (weights of X cells are ignored but validated).
        """
        if not 0 <= row < self.geometry.rows:
            raise TCAMError(f"row {row} outside [0, {self.geometry.rows})")
        if len(word) != self.geometry.cols:
            raise TCAMError(
                f"word width {len(word)} does not match cols {self.geometry.cols}"
            )
        w = np.asarray(weights)
        if w.shape != (self.geometry.cols,):
            raise TCAMError(
                f"weights must have shape ({self.geometry.cols},), got {w.shape}"
            )
        if np.any((w < 1) | (w > self.cell.n_levels)):
            raise TCAMError(
                f"weights must lie in [1, {self.cell.n_levels}]"
            )
        ledger = EnergyLedger()
        new = word.as_array()
        for col in range(self.geometry.cols):
            cost = self.cell.write_cost(
                Trit(int(self._stored[row, col])), Trit(int(new[col]))
            )
            ledger.add(EnergyComponent.WRITE, cost.energy)
        self._stored[row] = new
        self._weights[row] = w.astype(np.int16)
        self._valid[row] = True
        return ledger

    def weighted_distance(self, row: int, key: TernaryWord) -> int:
        """Software oracle: sum of weights over mismatching columns."""
        if not 0 <= row < self.geometry.rows:
            raise TCAMError(f"row {row} outside [0, {self.geometry.rows})")
        key_arr = key.as_array()
        stored = self._stored[row]
        x = int(Trit.X)
        mism = (stored != x) & (key_arr != x) & (stored != key_arr)
        return int(self._weights[row][mism].sum())

    # ------------------------------------------------------------------

    def distance_search(self, key: TernaryWord) -> DistanceSearchOutcome:
        """Time-domain weighted-distance search.

        Every valid row's ML is precharged and released; the crossing time
        of each line is computed exactly from its weighted pull-down
        ensemble.  Energy: all lines with any mismatch fully discharge (as
        in associative mode), plus the timing front-end per row.
        """
        if len(key) != self.geometry.cols:
            raise TCAMError(
                f"key width {len(key)} does not match cols {self.geometry.cols}"
            )
        rows, cols = self.geometry.rows, self.geometry.cols
        key_arr = key.as_array()
        x = int(Trit.X)
        driven = key_arr != x

        times = np.full(rows, np.inf)
        distances = np.zeros(rows, dtype=np.int64)
        ledger = EnergyLedger()
        n_discharged = 0

        for row in range(rows):
            if not self._valid[row]:
                continue
            stored = self._stored[row]
            mism = (stored != x) & driven & (stored != key_arr)
            distances[row] = int(self._weights[row][mism].sum())
            level_counts = np.bincount(
                self._weights[row][mism], minlength=self.cell.n_levels + 1
            )
            n_match = int(np.count_nonzero(driven)) - int(np.count_nonzero(mism))

            if not mism.any():
                continue  # pure-leak droop; crossing time stays inf
            n_discharged += 1

            def i_total(v: float, counts=level_counts, n_leak=n_match) -> float:
                total = n_leak * self.cell.i_leak(v)
                for level in range(1, self.cell.n_levels + 1):
                    c = int(counts[level])
                    if c:
                        total += c * self.cell.i_pulldown_level(v, level)
                return total

            times[row] = discharge_time(self.c_ml, i_total, self.vdd, self.v_sense)

        # Energy: discharged lines restore the full swing; the rest droop.
        ledger.add(
            EnergyComponent.ML_PRECHARGE,
            n_discharged * self.c_ml * self.vdd * self.vdd,
        )
        ledger.add(
            EnergyComponent.ML_DISSIPATION,
            n_discharged * 0.5 * self.c_ml * self.vdd * self.vdd,
        )
        ledger.add(EnergyComponent.SENSE_AMP, rows * 1.2e-15 * self.vdd**2)

        valid_idx = np.flatnonzero(self._valid)
        best = None
        if valid_idx.size:
            # Smallest weighted distance == largest crossing time; ties
            # break toward the lower row index (argmax semantics).
            best = int(valid_idx[np.argmax(times[valid_idx])])
        return DistanceSearchOutcome(
            crossing_times=times,
            distances=distances,
            best_row=best,
            energy=ledger,
        )
