"""Batch write planning.

Routing tables and rule sets update incrementally.  :class:`WriteScheduler`
diffs the desired content against what an array already stores and plans
the minimal set of row writes, which matters for FeFET TCAMs where a write
costs orders of magnitude more than a search (experiment R-T3 quantifies
the per-technology write costs this scheduler amortizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..energy.accounting import EnergyLedger
from ..errors import CapacityError, TCAMError
from .array import TCAMArray
from .trit import TernaryWord


@dataclass(frozen=True)
class WritePlan:
    """A planned batch update.

    Attributes:
        writes: ``(row, word)`` pairs to program.
        invalidations: Rows to mark invalid.
        unchanged: Rows already holding their desired word.
    """

    writes: tuple[tuple[int, TernaryWord], ...]
    invalidations: tuple[int, ...]
    unchanged: tuple[int, ...]

    @property
    def n_operations(self) -> int:
        """Writes plus invalidations."""
        return len(self.writes) + len(self.invalidations)


@dataclass
class WriteScheduler:
    """Plans and applies minimal batch updates against one array.

    Attributes:
        array: The target array.
    """

    array: TCAMArray
    _applied_plans: int = field(default=0, init=False)

    def plan(self, desired: list[TernaryWord]) -> WritePlan:
        """Diff ``desired`` (row-ordered) against the array contents.

        Rows beyond ``len(desired)`` are invalidated; rows already storing
        the right word are skipped.

        Raises:
            CapacityError: when ``desired`` exceeds the array's rows.
        """
        rows = self.array.geometry.rows
        if len(desired) > rows:
            raise CapacityError(
                f"{len(desired)} words do not fit in {rows} rows"
            )
        for word in desired:
            if len(word) != self.array.geometry.cols:
                raise TCAMError(
                    f"word width {len(word)} does not match array cols "
                    f"{self.array.geometry.cols}"
                )
        valid = self.array.valid_mask()
        stored = self.array.stored_matrix()

        writes: list[tuple[int, TernaryWord]] = []
        unchanged: list[int] = []
        for row, word in enumerate(desired):
            if valid[row] and bool(np.array_equal(stored[row], word.as_array())):
                unchanged.append(row)
            else:
                writes.append((row, word))
        invalidations = [
            row for row in range(len(desired), rows) if valid[row]
        ]
        return WritePlan(
            writes=tuple(writes),
            invalidations=tuple(invalidations),
            unchanged=tuple(unchanged),
        )

    def apply(self, plan: WritePlan) -> tuple[EnergyLedger, float]:
        """Execute a plan; return (energy ledger, total latency).

        Rows write serially (one write port), so latency is the sum of the
        per-row latencies.
        """
        ledger = EnergyLedger()
        latency = 0.0
        for row, word in plan.writes:
            outcome = self.array.write(row, word)
            ledger.merge(outcome.energy)
            latency += outcome.latency
        for row in plan.invalidations:
            self.array.invalidate(row)
        self._applied_plans += 1
        return ledger, latency

    def update(self, desired: list[TernaryWord]) -> tuple[WritePlan, EnergyLedger, float]:
        """Plan and apply in one step; return (plan, energy, latency)."""
        plan = self.plan(desired)
        ledger, latency = self.apply(plan)
        return plan, ledger, latency

    @property
    def applied_plans(self) -> int:
        """Number of plans applied through this scheduler."""
        return self._applied_plans


@dataclass
class WearLevelingScheduler:
    """A write scheduler that rotates the table through spare rows.

    FeFET and ReRAM cells are endurance-limited, and real update traffic
    is skewed: a few hot entries (flapping routes, rotating signatures)
    absorb most writes.  When the array has spare rows (capacity
    headroom), sliding the whole table's base row around the spare region
    spreads that hot-row wear across ``rows - table_len + 1`` physical
    rows -- without ever wrapping, so the intra-table priority order the
    TCAM's first-match semantics rely on is preserved exactly.

    Attributes:
        array: The target array.
        rotate_period: Applied updates between base-row moves.
    """

    array: TCAMArray
    rotate_period: int = 8
    _base_row: int = field(default=0, init=False)
    _updates_since_rotate: int = field(default=0, init=False)
    _table_len: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.rotate_period < 1:
            raise TCAMError(f"rotate_period must be >= 1, got {self.rotate_period}")

    @property
    def base_row(self) -> int:
        """Physical row the logical table currently starts at."""
        return self._base_row

    def logical_to_physical(self, logical_row: int) -> int:
        """Translate a logical table index to its physical row."""
        if not 0 <= logical_row < self._table_len:
            raise TCAMError(
                f"logical row {logical_row} outside the {self._table_len}-entry table"
            )
        return self._base_row + logical_row

    def physical_to_logical(self, physical_row: int) -> int | None:
        """Translate a physical match back to the table index (or None)."""
        logical = physical_row - self._base_row
        if 0 <= logical < self._table_len:
            return logical
        return None

    def update(self, desired: list[TernaryWord]) -> tuple[EnergyLedger, float]:
        """Write the desired table, rotating the base row periodically.

        Returns:
            (energy ledger, total write latency) including any migration.
        """
        rows = self.array.geometry.rows
        if len(desired) > rows:
            raise CapacityError(f"{len(desired)} words do not fit in {rows} rows")
        span = rows - len(desired)  # available slide range

        rotate_now = (
            span > 0
            and self._table_len > 0
            and self._updates_since_rotate + 1 >= self.rotate_period
        )
        if rotate_now:
            # Clear the old placement, then slide one row (ring over span+1).
            for logical in range(self._table_len):
                self.array.invalidate(self._base_row + logical)
            self._base_row = (self._base_row + 1) % (span + 1)
            self._updates_since_rotate = 0
        else:
            self._updates_since_rotate += 1

        ledger = EnergyLedger()
        latency = 0.0
        stored = self.array.stored_matrix()
        valid = self.array.valid_mask()
        for logical, word in enumerate(desired):
            physical = self._base_row + logical
            if valid[physical] and bool(
                np.array_equal(stored[physical], word.as_array())
            ):
                continue
            outcome = self.array.write(physical, word)
            ledger.merge(outcome.energy)
            latency += outcome.latency
        # Invalidate any stale tail beyond the new table.
        for logical in range(len(desired), self._table_len):
            self.array.invalidate(self._base_row + logical)
        self._table_len = len(desired)
        return ledger, latency

    def lookup(self, key: TernaryWord) -> tuple[int | None, "object"]:
        """Search and translate the first match back to a table index."""
        outcome = self.array.search(key)
        logical = (
            self.physical_to_logical(outcome.first_match)
            if outcome.first_match is not None
            else None
        )
        return logical, outcome
