"""Physical constants, SI prefixes and engineering-notation helpers.

Every quantity inside :mod:`repro` is carried in base SI units (volts,
amperes, farads, joules, seconds, metres).  The constants below exist so
that call sites read like the hand calculations in a circuits paper::

    c_ml = 1.5 * FEMTO          # 1.5 fF
    t_fe = 10 * NANO            # 10 nm
    print(eng(c_ml, "F"))       # "1.5 fF"

Nothing here depends on the rest of the package.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# ---------------------------------------------------------------------------
# Physical constants (CODATA 2018, truncated to the precision a behavioral
# device model can possibly justify)
# ---------------------------------------------------------------------------

Q_ELECTRON = 1.602176634e-19
"""Elementary charge [C]."""

K_BOLTZMANN = 1.380649e-23
"""Boltzmann constant [J/K]."""

EPSILON_0 = 8.8541878128e-12
"""Vacuum permittivity [F/m]."""

T_ROOM = 300.0
"""Default simulation temperature [K]."""

EPS_SIO2 = 3.9
"""Relative permittivity of SiO2."""

EPS_HZO = 30.0
"""Relative permittivity of Hf0.5Zr0.5O2 (HZO), typical reported range 25-35."""

EPS_SI = 11.7
"""Relative permittivity of silicon."""


def thermal_voltage(temperature_k: float = T_ROOM) -> float:
    """Return kT/q [V] at the given temperature.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return K_BOLTZMANN * temperature_k / Q_ELECTRON


_ENG_PREFIXES = {
    -18: "a",
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "M",
    9: "G",
    12: "T",
}


def eng(value: float, unit: str = "", digits: int = 3) -> str:
    """Format *value* in engineering notation with an SI prefix.

    >>> eng(1.5e-15, "F")
    '1.5 fF'
    >>> eng(0.0, "J")
    '0 J'
    >>> eng(-2.2e-12, "s", digits=2)
    '-2.2 ps'
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    exponent = int(math.floor(math.log10(abs(value)) / 3.0)) * 3
    exponent = max(-18, min(12, exponent))
    scaled = value / (10.0**exponent)
    prefix = _ENG_PREFIXES[exponent]
    text = f"{scaled:.{digits}g}"
    return f"{text} {prefix}{unit}".rstrip()


def db(ratio: float) -> float:
    """Convert a power ratio to decibels.

    >>> db(100.0)
    20.0
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def parallel(*resistances: float) -> float:
    """Resistance of resistors in parallel; infinite inputs are ignored.

    >>> parallel(2.0, 2.0)
    1.0
    >>> parallel(5.0, math.inf)
    5.0
    """
    if not resistances:
        raise ValueError("parallel() needs at least one resistance")
    conductance = 0.0
    for r in resistances:
        if r < 0.0:
            raise ValueError(f"resistance must be non-negative, got {r}")
        if r == 0.0:
            return 0.0
        if math.isfinite(r):
            conductance += 1.0 / r
    if conductance == 0.0:
        return math.inf
    return 1.0 / conductance


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to kelvin.

    >>> celsius_to_kelvin(25.0)
    298.15
    """
    kelvin = celsius + 273.15
    if kelvin <= 0.0:
        raise ValueError(f"temperature below absolute zero: {celsius} C")
    return kelvin
