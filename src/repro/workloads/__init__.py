"""Workload generators: random patterns, IP routing, ACLs, HDC memory."""

from .patterns import PatternStream, biased_key_stream, random_table
from .iproute import Route, RoutingTable, synthetic_routing_table
from .packetclass import AclRule, Packet, RuleSet, synthetic_acl
from .hdc import HDCMemory, HDCEncoder
from .signatures import (
    ScanHit,
    Signature,
    SignatureSet,
    plant_signatures,
    synthetic_signatures,
)

__all__ = [
    "PatternStream",
    "random_table",
    "biased_key_stream",
    "Route",
    "RoutingTable",
    "synthetic_routing_table",
    "AclRule",
    "Packet",
    "RuleSet",
    "synthetic_acl",
    "HDCEncoder",
    "HDCMemory",
    "Signature",
    "SignatureSet",
    "ScanHit",
    "synthetic_signatures",
    "plant_signatures",
]
