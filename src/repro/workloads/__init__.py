"""Workload generators: random patterns, IP routing, ACLs, HDC memory,
corpus-scale associative retrieval."""

from .patterns import PatternStream, biased_key_stream, random_table
from .iproute import Route, RoutingTable, synthetic_routing_table
from .packetclass import AclRule, Packet, RuleSet, synthetic_acl
from .hdc import HDCMemory, HDCEncoder
from .signatures import (
    ScanHit,
    Signature,
    SignatureSet,
    plant_signatures,
    synthetic_signatures,
)
from .retrieval import (
    CorpusConfig,
    QueryStats,
    RetrievalIndex,
    exact_topk,
    make_queries,
    recall_at_k,
    run_retrieval,
    synthetic_corpus,
)

__all__ = [
    "PatternStream",
    "random_table",
    "biased_key_stream",
    "Route",
    "RoutingTable",
    "synthetic_routing_table",
    "AclRule",
    "Packet",
    "RuleSet",
    "synthetic_acl",
    "HDCEncoder",
    "HDCMemory",
    "Signature",
    "SignatureSet",
    "ScanHit",
    "synthetic_signatures",
    "plant_signatures",
    "CorpusConfig",
    "QueryStats",
    "RetrievalIndex",
    "synthetic_corpus",
    "make_queries",
    "exact_topk",
    "recall_at_k",
    "run_retrieval",
]
