"""Hyperdimensional-computing associative memory on a TCAM.

The one-shot-learning application that motivated ferroelectric TCAMs
(Ni et al., Nature Electronics 2019): class prototypes are binary
hypervectors stored as TCAM rows, and classification is a *nearest-match*
search -- the row with the fewest mismatching bits wins.  Don't-care
masking of low-confidence prototype bits both shrinks energy (X columns
never discharge a line) and improves noise tolerance.

The encoder here is a standard random-projection HDC pipeline: item
memory of random hypervectors, XOR binding, majority bundling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import WorkloadError
from ..tcam.array import TCAMArray
from ..tcam.trit import TernaryWord, Trit


@dataclass
class HDCEncoder:
    """Random-projection hyperdimensional encoder.

    Attributes:
        dimensions: Hypervector width (the TCAM word width).
        n_features: Input feature count.
        n_levels: Quantization levels per feature.
        rng: Generator for the (fixed) item memories.
    """

    dimensions: int
    n_features: int
    n_levels: int
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if self.dimensions < 8:
            raise WorkloadError(f"dimensions must be >= 8, got {self.dimensions}")
        if self.n_features < 1 or self.n_levels < 2:
            raise WorkloadError("need >= 1 feature and >= 2 levels")
        # Item memory: one random hypervector per feature position.
        self._position_hvs = self.rng.integers(
            0, 2, size=(self.n_features, self.dimensions), dtype=np.int8
        )
        # Level memory: correlated chain so nearby levels stay similar.
        levels = [self.rng.integers(0, 2, size=self.dimensions, dtype=np.int8)]
        flips_per_step = max(self.dimensions // (2 * (self.n_levels - 1)), 1)
        for _ in range(self.n_levels - 1):
            nxt = levels[-1].copy()
            idx = self.rng.choice(self.dimensions, size=flips_per_step, replace=False)
            nxt[idx] ^= 1
            levels.append(nxt)
        self._level_hvs = np.stack(levels)

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode quantized features (ints in [0, n_levels)) to a binary HV."""
        f = np.asarray(features)
        if f.shape != (self.n_features,):
            raise WorkloadError(
                f"features must have shape ({self.n_features},), got {f.shape}"
            )
        if np.any((f < 0) | (f >= self.n_levels)):
            raise WorkloadError("feature levels out of range")
        bound = self._position_hvs ^ self._level_hvs[f]  # XOR binding
        votes = bound.sum(axis=0)
        majority = (votes * 2 > self.n_features).astype(np.int8)
        ties = votes * 2 == self.n_features
        if ties.any():  # break ties deterministically from position parity
            majority[ties] = self._position_hvs[0, ties]
        return majority


@dataclass(frozen=True)
class HDCQueryResult:
    """One classification outcome.

    Attributes:
        label: Predicted class label, or ``None`` with an empty memory.
        distance: Mismatch count to the winning prototype.
        energy: Search energy [J].
    """

    label: int | None
    distance: int
    energy: float


class HDCMemory:
    """Class prototypes in a TCAM, classified by nearest match.

    Args:
        array: A precharge-style TCAM whose width equals the HV dimension.
        confidence_threshold: Bundled class bits whose vote margin falls
            below this fraction are stored as X (don't care); 0 stores
            every bit.
    """

    def __init__(self, array: TCAMArray, confidence_threshold: float = 0.0) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise WorkloadError(
                f"confidence_threshold must be in [0, 1], got {confidence_threshold}"
            )
        self.array = array
        self.confidence_threshold = confidence_threshold
        self._labels: list[int] = []

    @property
    def n_classes(self) -> int:
        """Stored prototype count."""
        return len(self._labels)

    def train_class(self, label: int, examples: np.ndarray) -> None:
        """Bundle ``examples`` (n x D binary) into one stored prototype.

        Low-confidence bit positions (close votes) become X when the
        confidence threshold is positive.
        """
        ex = np.asarray(examples, dtype=np.int8)
        if ex.ndim != 2 or ex.shape[1] != self.array.geometry.cols:
            raise WorkloadError(
                f"examples must be (n, {self.array.geometry.cols}), got {ex.shape}"
            )
        if len(self._labels) >= self.array.geometry.rows:
            raise WorkloadError("associative memory is full")
        votes = ex.mean(axis=0)
        bits = (votes > 0.5).astype(np.int8)
        confidence = np.abs(votes - 0.5) * 2.0
        trits = np.where(
            confidence < self.confidence_threshold, int(Trit.X), bits
        ).astype(np.int8)
        self.array.write(len(self._labels), TernaryWord(trits))
        self._labels.append(label)

    def classify(self, hypervector: np.ndarray) -> HDCQueryResult:
        """Nearest-match classification of one binary hypervector."""
        query = self._to_word(hypervector)
        if not self._labels:
            return HDCQueryResult(label=None, distance=0, energy=0.0)
        outcome = self.array.nearest_match(query)
        label = self._labels[outcome.row] if outcome.row is not None else None
        return HDCQueryResult(
            label=label, distance=outcome.distance, energy=outcome.energy.total
        )

    def classify_batch(self, hypervectors: np.ndarray) -> list[HDCQueryResult]:
        """Classify a stack of hypervectors on the batched search path.

        Args:
            hypervectors: ``(n, D)`` binary matrix (or any iterable of
                ``(D,)`` vectors).

        Returns one result per query, identical to calling
        :meth:`classify` one vector at a time but sharing the per-class
        match-line trajectory work across the whole stack.
        """
        queries = [self._to_word(hv) for hv in hypervectors]
        if not self._labels:
            return [HDCQueryResult(label=None, distance=0, energy=0.0) for _ in queries]
        with obs.span(
            "workload.hdc.classify_batch",
            n_queries=len(queries),
            n_classes=len(self._labels),
        ):
            outcomes = self.array.nearest_match_batch(queries)
        return [
            HDCQueryResult(
                label=self._labels[o.row] if o.row is not None else None,
                distance=o.distance,
                energy=o.energy.total,
            )
            for o in outcomes
        ]

    def _to_word(self, hypervector: np.ndarray) -> TernaryWord:
        hv = np.asarray(hypervector, dtype=np.int8)
        if hv.shape != (self.array.geometry.cols,):
            raise WorkloadError(
                f"hypervector must have shape ({self.array.geometry.cols},), "
                f"got {hv.shape}"
            )
        return TernaryWord(hv)

    def x_density(self) -> float:
        """Fraction of stored prototype trits that are X."""
        if not self._labels:
            return 0.0
        stored = self.array.stored_matrix()[: len(self._labels)]
        return float(np.mean(stored == int(Trit.X)))
