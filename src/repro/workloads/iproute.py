"""IP longest-prefix-match routing on a TCAM.

The canonical TCAM application: each route ``addr/len`` becomes a ternary
word with ``len`` specified MSBs and ``32 - len`` don't-cares; routes are
stored longest-prefix-first so the priority encoder's first match *is*
the longest match.

:func:`synthetic_routing_table` draws prefix lengths from a distribution
shaped like public BGP snapshots (mass concentrated at /16-/24 with a
spike at /24), which is what gives the application benchmark its realistic
X-density and match statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import WorkloadError
from ..tcam.array import TCAMArray
from ..tcam.trit import TernaryWord, prefix_word, word_from_int

ADDRESS_BITS = 32

# Prefix-length histogram loosely shaped on public BGP table statistics:
# negligible mass below /8, a broad shelf /16-/23, and ~55-60% at /24.
_PREFIX_LENGTHS = np.arange(8, 33)
_PREFIX_WEIGHTS = np.array(
    [
        0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.5,  # /8  - /15
        4.0, 2.0, 2.5, 3.0, 4.5, 5.0, 6.5, 7.0,  # /16 - /23
        55.0, 0.5, 0.4, 0.3, 0.3, 0.6, 0.8, 1.0, 1.6,  # /24 - /32
    ]
)


@dataclass(frozen=True)
class Route:
    """One routing-table entry.

    Attributes:
        prefix: Address prefix, right-padded with zeros to 32 bits.
        length: Prefix length (0-32).
        next_hop: Opaque next-hop identifier.
    """

    prefix: int
    length: int
    next_hop: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ADDRESS_BITS:
            raise WorkloadError(f"prefix length {self.length} outside [0, 32]")
        if not 0 <= self.prefix < (1 << ADDRESS_BITS):
            raise WorkloadError(f"prefix {self.prefix:#x} is not a 32-bit value")
        mask = ((1 << self.length) - 1) << (ADDRESS_BITS - self.length) if self.length else 0
        if self.prefix & ~mask:
            raise WorkloadError(
                f"prefix {self.prefix:#010x}/{self.length} has bits below the mask"
            )

    def covers(self, address: int) -> bool:
        """True when ``address`` falls inside this prefix."""
        if self.length == 0:
            return True
        shift = ADDRESS_BITS - self.length
        return (address >> shift) == (self.prefix >> shift)

    def to_word(self) -> TernaryWord:
        """TCAM image: specified MSBs, X tail."""
        if self.length == 0:
            # All-X word: matches every address.
            return prefix_word(0, 0, ADDRESS_BITS)
        return prefix_word(self.prefix, self.length, ADDRESS_BITS)


class RoutingTable:
    """A software routing table plus its TCAM deployment.

    Routes are sorted longest-prefix-first before loading, which makes the
    TCAM's priority encoder implement LPM directly.  :meth:`lookup_reference`
    is the pure-software oracle the tests compare against.
    """

    def __init__(self, routes: list[Route]) -> None:
        if not routes:
            raise WorkloadError("routing table must contain at least one route")
        self.routes = sorted(routes, key=lambda r: -r.length)

    def __len__(self) -> int:
        return len(self.routes)

    def lookup_reference(self, address: int) -> Route | None:
        """Longest-prefix match by linear scan (the software oracle)."""
        if not 0 <= address < (1 << ADDRESS_BITS):
            raise WorkloadError(f"address {address:#x} is not a 32-bit value")
        best: Route | None = None
        for route in self.routes:
            if route.covers(address) and (best is None or route.length > best.length):
                best = route
        return best

    def words(self) -> list[TernaryWord]:
        """TCAM images in stored (priority) order."""
        return [r.to_word() for r in self.routes]

    def deploy(self, array: TCAMArray) -> None:
        """Load the table into a 32-column TCAM array.

        Raises:
            WorkloadError: when the array is too small or not 32 bits wide.
        """
        if array.geometry.cols != ADDRESS_BITS:
            raise WorkloadError(
                f"LPM needs a {ADDRESS_BITS}-column array, got {array.geometry.cols}"
            )
        if array.geometry.rows < len(self.routes):
            raise WorkloadError(
                f"{len(self.routes)} routes do not fit in {array.geometry.rows} rows"
            )
        array.load(self.words())

    def lookup_tcam(self, array: TCAMArray, address: int):
        """One TCAM lookup; returns ``(route | None, SearchOutcome)``."""
        key = word_from_int(address, ADDRESS_BITS)
        outcome = array.search(key)
        return self._route_of(outcome), outcome

    def lookup_tcam_batch(self, array: TCAMArray, addresses: list[int], workers: int = 0):
        """Look up an address trace on the batched search path.

        Returns one ``(route | None, SearchOutcome)`` pair per address,
        identical to calling :meth:`lookup_tcam` address by address but
        sharing the per-mismatch-class trajectory work across the trace.

        Args:
            array: The deployed TCAM array.
            addresses: Integer IPv4 addresses to look up.
            workers: Process count forwarded to
                :meth:`~repro.tcam.array.TCAMArray.search_batch`.
        """
        with obs.span(
            "workload.lpm.lookup_batch",
            n_addresses=len(addresses),
            n_routes=len(self.routes),
        ):
            keys = [word_from_int(a, ADDRESS_BITS) for a in addresses]
            outcomes = array.search_batch(keys, workers=workers)
        return [(self._route_of(outcome), outcome) for outcome in outcomes]

    def _route_of(self, outcome) -> Route | None:
        if outcome.first_match is not None and outcome.first_match < len(self.routes):
            return self.routes[outcome.first_match]
        return None


def synthetic_routing_table(
    n_routes: int,
    rng: np.random.Generator,
    next_hops: int = 16,
) -> RoutingTable:
    """Draw a BGP-shaped synthetic routing table.

    Args:
        n_routes: Number of (distinct) routes to draw.
        rng: Random generator.
        next_hops: Size of the next-hop pool.
    """
    if n_routes < 1:
        raise WorkloadError(f"n_routes must be >= 1, got {n_routes}")
    if next_hops < 1:
        raise WorkloadError(f"next_hops must be >= 1, got {next_hops}")
    probs = _PREFIX_WEIGHTS / _PREFIX_WEIGHTS.sum()
    seen: set[tuple[int, int]] = set()
    routes: list[Route] = []
    while len(routes) < n_routes:
        length = int(rng.choice(_PREFIX_LENGTHS, p=probs))
        raw = int(rng.integers(0, 1 << ADDRESS_BITS))
        shift = ADDRESS_BITS - length
        prefix = (raw >> shift) << shift
        if (prefix, length) in seen:
            continue
        seen.add((prefix, length))
        routes.append(Route(prefix=prefix, length=length, next_hop=int(rng.integers(0, next_hops))))
    return RoutingTable(routes)


def trace_addresses(
    table: RoutingTable,
    n_lookups: int,
    rng: np.random.Generator,
    hit_fraction: float = 0.8,
) -> list[int]:
    """A lookup trace where ``hit_fraction`` of addresses hit stored prefixes.

    Hit addresses are drawn inside random routes (with random host bits);
    the rest are uniform random (and may still hit short prefixes).
    """
    if n_lookups < 0:
        raise WorkloadError(f"n_lookups must be non-negative, got {n_lookups}")
    if not 0.0 <= hit_fraction <= 1.0:
        raise WorkloadError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    addresses = []
    for _ in range(n_lookups):
        if rng.random() < hit_fraction:
            route = table.routes[int(rng.integers(0, len(table.routes)))]
            host_bits = ADDRESS_BITS - route.length
            host = int(rng.integers(0, 1 << host_bits)) if host_bits else 0
            addresses.append(route.prefix | host)
        else:
            addresses.append(int(rng.integers(0, 1 << ADDRESS_BITS)))
    return addresses
