"""Packet classification (ACL matching) on a TCAM.

Five-tuple access-control rules -- source/destination prefixes, port
ranges, protocol -- compile into ternary words.  Port *ranges* cannot be
expressed directly in ternary; the standard technique is *prefix
expansion*: a range splits into the minimal set of prefix intervals, each
becoming one TCAM row.  The expansion factor (worst case ``2w - 2`` rows
per range) is itself a classic TCAM cost, so the generator reports it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import WorkloadError
from ..tcam.array import TCAMArray
from ..tcam.trit import TernaryWord, Trit, word_from_int

SRC_BITS = 16   # truncated addresses keep the demo arrays compact
DST_BITS = 16
PORT_BITS = 16
PROTO_BITS = 8
RULE_BITS = SRC_BITS + DST_BITS + PORT_BITS + PROTO_BITS


def range_to_prefixes(lo: int, hi: int, width: int) -> list[tuple[int, int]]:
    """Minimal prefix cover of the integer interval [lo, hi].

    Returns:
        ``(value, prefix_len)`` pairs; each covers ``value >> (width-len)``.

    >>> range_to_prefixes(0, 65535, 16)
    [(0, 0)]
    >>> len(range_to_prefixes(1, 65534, 16))
    30
    """
    if not 0 <= lo <= hi < (1 << width):
        raise WorkloadError(f"invalid range [{lo}, {hi}] for width {width}")
    prefixes: list[tuple[int, int]] = []
    while lo <= hi:
        # Largest block aligned at lo that still fits inside [lo, hi].
        size = lo & -lo if lo > 0 else 1 << width
        while size > hi - lo + 1:
            size >>= 1
        length = width - size.bit_length() + 1
        prefixes.append((lo, length))
        lo += size
    return prefixes


def _field_trits(value: int, prefix_len: int, width: int) -> list[Trit]:
    bits = word_from_int(value, width)
    return [bits[i] if i < prefix_len else Trit.X for i in range(width)]


@dataclass(frozen=True)
class AclRule:
    """One access-control rule.

    Attributes:
        src_prefix: Source prefix value (left-aligned in SRC_BITS).
        src_len: Source prefix length.
        dst_prefix: Destination prefix value.
        dst_len: Destination prefix length.
        port_lo: Destination-port range low end (inclusive).
        port_hi: Destination-port range high end (inclusive).
        proto: Protocol number, or ``None`` for any.
        action: Opaque action id (0 = deny, 1 = permit, ...).
    """

    src_prefix: int
    src_len: int
    dst_prefix: int
    dst_len: int
    port_lo: int
    port_hi: int
    proto: int | None
    action: int

    def __post_init__(self) -> None:
        if not 0 <= self.src_len <= SRC_BITS or not 0 <= self.dst_len <= DST_BITS:
            raise WorkloadError("prefix lengths out of range")
        if not 0 <= self.port_lo <= self.port_hi < (1 << PORT_BITS):
            raise WorkloadError(f"invalid port range [{self.port_lo}, {self.port_hi}]")
        if self.proto is not None and not 0 <= self.proto < (1 << PROTO_BITS):
            raise WorkloadError(f"invalid protocol {self.proto}")

    def matches(self, packet: "Packet") -> bool:
        """Software oracle for one packet."""
        if self.src_len and (packet.src >> (SRC_BITS - self.src_len)) != (
            self.src_prefix >> (SRC_BITS - self.src_len)
        ):
            return False
        if self.dst_len and (packet.dst >> (DST_BITS - self.dst_len)) != (
            self.dst_prefix >> (DST_BITS - self.dst_len)
        ):
            return False
        if not self.port_lo <= packet.port <= self.port_hi:
            return False
        if self.proto is not None and packet.proto != self.proto:
            return False
        return True

    def expand(self) -> list[TernaryWord]:
        """Prefix-expand the port range into TCAM words."""
        words = []
        for value, length in range_to_prefixes(self.port_lo, self.port_hi, PORT_BITS):
            trits = (
                _field_trits(self.src_prefix, self.src_len, SRC_BITS)
                + _field_trits(self.dst_prefix, self.dst_len, DST_BITS)
                + _field_trits(value, length, PORT_BITS)
                + (
                    _field_trits(self.proto, PROTO_BITS, PROTO_BITS)
                    if self.proto is not None
                    else [Trit.X] * PROTO_BITS
                )
            )
            words.append(TernaryWord(trits))
        return words


@dataclass(frozen=True)
class Packet:
    """A packet header in the truncated 5-tuple space."""

    src: int
    dst: int
    port: int
    proto: int

    def to_key(self) -> TernaryWord:
        """Fully specified search key."""
        parts = []
        for value, width in (
            (self.src, SRC_BITS),
            (self.dst, DST_BITS),
            (self.port, PORT_BITS),
            (self.proto, PROTO_BITS),
        ):
            shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
            parts.append(((value >> shifts) & 1).astype(np.int8))
        return TernaryWord(np.concatenate(parts))


class RuleSet:
    """An ordered ACL and its TCAM compilation.

    First-matching-rule-wins semantics map directly onto the priority
    encoder once the expanded rows keep rule order.
    """

    def __init__(self, rules: list[AclRule]) -> None:
        if not rules:
            raise WorkloadError("rule set must contain at least one rule")
        self.rules = list(rules)
        self._rows: list[tuple[TernaryWord, int]] = []
        for rule_idx, rule in enumerate(self.rules):
            for word in rule.expand():
                self._rows.append((word, rule_idx))

    @property
    def n_tcam_rows(self) -> int:
        """Rows after prefix expansion."""
        return len(self._rows)

    @property
    def expansion_factor(self) -> float:
        """TCAM rows per original rule."""
        return self.n_tcam_rows / len(self.rules)

    def classify_reference(self, packet: Packet) -> int | None:
        """First matching rule index by linear scan (the oracle)."""
        for idx, rule in enumerate(self.rules):
            if rule.matches(packet):
                return idx
        return None

    def deploy(self, array: TCAMArray) -> None:
        """Load the expanded rows into a RULE_BITS-wide array."""
        if array.geometry.cols != RULE_BITS:
            raise WorkloadError(
                f"ACL needs a {RULE_BITS}-column array, got {array.geometry.cols}"
            )
        if array.geometry.rows < self.n_tcam_rows:
            raise WorkloadError(
                f"{self.n_tcam_rows} expanded rows do not fit in "
                f"{array.geometry.rows} rows"
            )
        array.load([word for word, _ in self._rows])

    def classify_tcam(self, array: TCAMArray, packet: Packet):
        """One TCAM classification; returns ``(rule index | None, outcome)``."""
        outcome = array.search(packet.to_key())
        return self._rule_of(outcome), outcome

    def classify_tcam_batch(self, array: TCAMArray, packets: list[Packet]):
        """Classify a packet burst on the batched search path.

        Returns one ``(rule index | None, outcome)`` pair per packet,
        identical to calling :meth:`classify_tcam` packet by packet but
        sharing the per-mismatch-class trajectory work across the burst.
        """
        with obs.span(
            "workload.acl.classify_batch",
            n_packets=len(packets),
            n_tcam_rows=self.n_tcam_rows,
        ):
            outcomes = array.search_batch([p.to_key() for p in packets])
        return [(self._rule_of(outcome), outcome) for outcome in outcomes]

    def _rule_of(self, outcome) -> int | None:
        if outcome.first_match is not None and outcome.first_match < len(self._rows):
            return self._rows[outcome.first_match][1]
        return None


def synthetic_acl(n_rules: int, rng: np.random.Generator) -> RuleSet:
    """Draw a synthetic ACL with realistic field statistics.

    ~60% of rules pin an exact port, ~25% use a port range (triggering
    prefix expansion), the rest accept any port; prefixes cluster at /8-/16
    of the truncated 16-bit fields.
    """
    if n_rules < 1:
        raise WorkloadError(f"n_rules must be >= 1, got {n_rules}")
    rules = []
    common_ports = (22, 53, 80, 443, 8080)
    for _ in range(n_rules):
        src_len = int(rng.integers(6, SRC_BITS + 1))
        dst_len = int(rng.integers(6, DST_BITS + 1))
        src = (int(rng.integers(0, 1 << src_len)) << (SRC_BITS - src_len)) if src_len else 0
        dst = (int(rng.integers(0, 1 << dst_len)) << (DST_BITS - dst_len)) if dst_len else 0
        roll = rng.random()
        if roll < 0.60:
            port = int(rng.choice(common_ports))
            port_lo = port_hi = port
        elif roll < 0.85:
            lo = int(rng.integers(1024, 60000))
            port_lo, port_hi = lo, min(lo + int(rng.integers(1, 2048)), 65535)
        else:
            port_lo, port_hi = 0, 65535
        proto = int(rng.choice([6, 17])) if rng.random() < 0.8 else None
        rules.append(
            AclRule(
                src_prefix=src,
                src_len=src_len,
                dst_prefix=dst,
                dst_len=dst_len,
                port_lo=port_lo,
                port_hi=port_hi,
                proto=proto,
                action=int(rng.integers(0, 2)),
            )
        )
    return RuleSet(rules)


def random_packets(
    ruleset: RuleSet, n_packets: int, rng: np.random.Generator, hit_fraction: float = 0.7
) -> list[Packet]:
    """Packets where ``hit_fraction`` are crafted to hit some rule."""
    if n_packets < 0:
        raise WorkloadError(f"n_packets must be non-negative, got {n_packets}")
    packets = []
    for _ in range(n_packets):
        if rng.random() < hit_fraction:
            rule = ruleset.rules[int(rng.integers(0, len(ruleset.rules)))]
            src_host = SRC_BITS - rule.src_len
            dst_host = DST_BITS - rule.dst_len
            packets.append(
                Packet(
                    src=rule.src_prefix | (int(rng.integers(0, 1 << src_host)) if src_host else 0),
                    dst=rule.dst_prefix | (int(rng.integers(0, 1 << dst_host)) if dst_host else 0),
                    port=int(rng.integers(rule.port_lo, rule.port_hi + 1)),
                    proto=rule.proto if rule.proto is not None else int(rng.choice([6, 17])),
                )
            )
        else:
            packets.append(
                Packet(
                    src=int(rng.integers(0, 1 << SRC_BITS)),
                    dst=int(rng.integers(0, 1 << DST_BITS)),
                    port=int(rng.integers(0, 1 << PORT_BITS)),
                    proto=int(rng.integers(0, 1 << PROTO_BITS)),
                )
            )
    return packets
