"""Random and biased ternary pattern generators.

These are the "micro" workloads behind the sweep figures: stored tables
with controllable don't-care density and key streams with controllable
temporal correlation (which sets the search-line activity factor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..tcam.trit import TernaryWord, Trit, random_word


def random_table(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    x_fraction: float = 0.3,
) -> list[TernaryWord]:
    """A table of independent random ternary words.

    Args:
        rows: Number of words.
        cols: Trits per word.
        rng: Random generator.
        x_fraction: Per-column don't-care probability.
    """
    if rows < 1:
        raise WorkloadError(f"rows must be >= 1, got {rows}")
    return [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]


@dataclass
class PatternStream:
    """An endless stream of search keys with tunable temporal correlation.

    Attributes:
        cols: Key width.
        flip_probability: Per-column probability that a key differs from
            its predecessor.  1.0 gives independent keys (worst-case SL
            activity); small values model locality-heavy traffic.
        rng: Random generator.
    """

    cols: int
    flip_probability: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if self.cols < 1:
            raise WorkloadError(f"cols must be >= 1, got {self.cols}")
        if not 0.0 <= self.flip_probability <= 1.0:
            raise WorkloadError(
                f"flip_probability must be in [0, 1], got {self.flip_probability}"
            )
        self._current = self.rng.integers(0, 2, size=self.cols).astype(np.int8)

    def next_key(self) -> TernaryWord:
        """Advance the stream and return the next (fully specified) key."""
        flips = self.rng.random(self.cols) < self.flip_probability
        self._current = np.where(flips, 1 - self._current, self._current).astype(np.int8)
        return TernaryWord(self._current.copy())

    def keys(self, n: int) -> list[TernaryWord]:
        """Materialize the next ``n`` keys."""
        if n < 0:
            raise WorkloadError(f"n must be non-negative, got {n}")
        return [self.next_key() for _ in range(n)]


def biased_key_stream(
    cols: int,
    n_keys: int,
    rng: np.random.Generator,
    flip_probability: float = 0.5,
) -> list[TernaryWord]:
    """Convenience wrapper: ``n_keys`` from a :class:`PatternStream`."""
    stream = PatternStream(cols=cols, flip_probability=flip_probability, rng=rng)
    return stream.keys(n_keys)


def planted_key(table: list[TernaryWord], rng: np.random.Generator) -> TernaryWord:
    """A key guaranteed to match one random row of ``table``.

    Every X column of the chosen row is filled with a random bit, so the
    key is fully specified yet matches the row.
    """
    if not table:
        raise WorkloadError("table must be non-empty")
    row = table[int(rng.integers(0, len(table)))]
    trits = []
    for t in row:
        if t is Trit.X:
            trits.append(Trit(int(rng.integers(0, 2))))
        else:
            trits.append(t)
    return TernaryWord(trits)
