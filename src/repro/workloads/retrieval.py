"""Corpus-scale associative retrieval over sharded TCAM banks.

RAG-style nearest-neighbor search with tunable approximate matching:
a corpus is encoded into fixed-width binary signatures (the same
random-projection idiom as the :mod:`~repro.workloads.hdc` workload,
vectorized for 100k+ entries), sharded row-major across the banks of
one or more :class:`~repro.tcam.chip.TCAMChip` instances, and queried
through the distance-mode search APIs:

* :meth:`RetrievalIndex.query_topk` -- per-shard ``topk_match_batch``
  merged on ``(distance, global row)``, which reproduces the exact
  global top-k (each shard's local top-k is a superset of its
  contribution to the global answer).
* :meth:`RetrievalIndex.query_threshold` -- per-shard
  ``threshold_match_batch`` at a tunable Hamming tolerance.  This is
  the TAP-CAM trade: the match-line strobe fires when the first
  *rejected* mismatch class crosses the sense reference, so looser
  tolerances strobe earlier and spend less evaluation-window leakage
  -- tolerance buys both recall and energy, at the cost of a coarser
  (unranked) candidate set.

Recall is scored against an exact numpy Hamming oracle
(:func:`exact_topk`), and energy against the exhaustive exact-search
baseline (:meth:`RetrievalIndex.exact_search_baseline`): the energy a
conventional deployment would pay scanning every shard with the
exact-match engine.

All banks of an index are electrically identical, so with the kernel
enabled the compiled class/window tables are built once and adopted by
every bank (:meth:`~repro.kernels.KernelEngine.adopt_tables`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core import build_array, get_design
from ..errors import WorkloadError
from ..tcam import ArrayGeometry
from ..tcam.chip import GatingPolicy, TCAMChip
from ..tcam.trit import TernaryWord


# ---------------------------------------------------------------------------
# Corpus synthesis + numpy oracle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of a synthetic signature corpus.

    Attributes:
        n_entries: Corpus size (TCAM rows across all shards).
        dims: Signature width in bits (the TCAM word width).
        n_clusters: Number of cluster centers; entries are noisy copies
            of their center, so every entry has near neighbors.
        cluster_spread: Bits flipped between an entry and its center.
        query_noise: Bits flipped between a query and its source entry.
    """

    n_entries: int
    dims: int = 64
    n_clusters: int = 200
    cluster_spread: int = 6
    query_noise: int = 3

    def __post_init__(self) -> None:
        if self.n_entries < 1:
            raise WorkloadError(f"n_entries must be >= 1, got {self.n_entries}")
        if self.dims < 8:
            raise WorkloadError(f"dims must be >= 8, got {self.dims}")
        if self.n_clusters < 1:
            raise WorkloadError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if not 0 <= self.cluster_spread <= self.dims:
            raise WorkloadError("cluster_spread outside [0, dims]")
        if not 0 <= self.query_noise <= self.dims:
            raise WorkloadError("query_noise outside [0, dims]")


def _flip_bits(vectors: np.ndarray, n_flips: int, rng: np.random.Generator) -> np.ndarray:
    """Flip ``n_flips`` distinct random bits in every row (vectorized)."""
    out = vectors.copy()
    if n_flips == 0:
        return out
    n, dims = out.shape
    # Row-wise distinct columns: argpartition of one uniform draw per cell.
    scores = rng.random((n, dims))
    cols = np.argpartition(scores, n_flips - 1, axis=1)[:, :n_flips]
    rows = np.repeat(np.arange(n), n_flips)
    out[rows, cols.ravel()] ^= 1
    return out


def synthetic_corpus(config: CorpusConfig, seed: int = 0) -> np.ndarray:
    """Clustered binary signature corpus, ``(n_entries, dims)`` int8 in {0, 1}."""
    rng = np.random.default_rng(seed)
    centers = rng.integers(0, 2, size=(config.n_clusters, config.dims), dtype=np.int8)
    assignment = rng.integers(0, config.n_clusters, size=config.n_entries)
    return _flip_bits(centers[assignment], config.cluster_spread, rng)


def make_queries(
    signatures: np.ndarray, n_queries: int, noise_bits: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded queries: noisy copies of sampled corpus entries.

    Returns ``(queries, source_idx)`` -- the ``(n_queries, dims)`` query
    matrix and the corpus row each query was perturbed from.
    """
    rng = np.random.default_rng(seed)
    source_idx = rng.integers(0, signatures.shape[0], size=n_queries)
    queries = _flip_bits(signatures[source_idx], noise_bits, rng)
    return queries, source_idx


def hamming_distances(signatures: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Exact ``(n_queries, n_entries)`` Hamming distance matrix.

    One float32 matmul pair (XOR of binary vectors expands to
    ``q (1-s) + (1-q) s``); every partial sum is an exact small integer,
    so the result is exact for any BLAS summation order.
    """
    s = np.ascontiguousarray(signatures.T, dtype=np.float32)
    q1 = queries.astype(np.float32)
    q0 = 1.0 - q1
    return (q1 @ (1.0 - s) + q0 @ s).astype(np.int64)


def exact_topk(signatures: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    """Numpy oracle: ``(n_queries, k)`` nearest corpus rows per query.

    Ordered by ascending distance with ties broken by ascending row
    index -- the same total order the TCAM top-k merge produces.
    """
    if k < 1:
        raise WorkloadError(f"k must be >= 1, got {k}")
    dist = hamming_distances(signatures, queries)
    k = min(k, signatures.shape[0])
    return np.argsort(dist, axis=1, kind="stable")[:, :k]


def recall_at_k(candidates: list[set[int]] | np.ndarray, truth: np.ndarray) -> float:
    """Mean fraction of each query's true top-k found in its candidates."""
    hits = 0
    total = truth.shape[0] * truth.shape[1]
    for q in range(truth.shape[0]):
        cand = candidates[q]
        cand = set(int(r) for r in cand) if not isinstance(cand, set) else cand
        hits += sum(1 for r in truth[q] if int(r) in cand)
    return hits / total if total else 0.0


# ---------------------------------------------------------------------------
# Sharded index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryStats:
    """Aggregate cost of one query batch over every shard.

    Attributes:
        n_queries: Batch size.
        energy_total: Summed search energy across shards and queries [J].
        energy_per_query: ``energy_total / n_queries`` [J].
        latency_mean: Mean per-query latency [s]; shards operate in
            parallel, so one query's latency is its *slowest* shard.
        latency_max: Worst per-query latency [s].
    """

    n_queries: int
    energy_total: float
    energy_per_query: float
    latency_mean: float
    latency_max: float


def _stats(n_queries: int, energy: np.ndarray, latency: np.ndarray) -> QueryStats:
    return QueryStats(
        n_queries=n_queries,
        energy_total=float(energy.sum()),
        energy_per_query=float(energy.sum() / n_queries),
        latency_mean=float(latency.mean()),
        latency_max=float(latency.max()),
    )


class RetrievalIndex:
    """Binary signatures sharded row-major across identical TCAM banks.

    Args:
        signatures: ``(n_entries, dims)`` binary matrix (int, values in
            {0, 1}); row ``i`` becomes chip-global row ``i``.
        design: Design registry key (precharge-style sensing required
            by the distance search APIs).
        bank_rows: Rows per bank (shard size).
        banks_per_chip: Banks tiled per chip.
        use_kernel: Compile the distance kernel once and share its
            tables across every bank.
        gating: Optional chip gating policy.
    """

    def __init__(
        self,
        signatures: np.ndarray,
        *,
        design: str = "fefet2t",
        bank_rows: int = 256,
        banks_per_chip: int = 16,
        use_kernel: bool = True,
        gating: GatingPolicy | None = None,
    ) -> None:
        signatures = np.asarray(signatures, dtype=np.int8)
        if signatures.ndim != 2:
            raise WorkloadError(f"signatures must be 2-D, got {signatures.shape}")
        if signatures.size and not np.isin(signatures, (0, 1)).all():
            raise WorkloadError("signatures must be binary (0/1)")
        self.n_entries, self.dims = signatures.shape
        self.design = design
        self.bank_rows = bank_rows
        spec = get_design(design)
        geometry = ArrayGeometry(rows=bank_rows, cols=self.dims)

        n_banks = -(-self.n_entries // bank_rows)
        n_chips = -(-n_banks // banks_per_chip)
        #: Shards that actually hold entries; fully-empty tail banks of
        #: the last chip stay power-gated and are never scanned.
        self._active_banks = n_banks
        with obs.span(
            "workload.retrieval.build",
            n_entries=self.n_entries,
            n_banks=n_banks,
            n_chips=n_chips,
        ):
            self.chips = [
                TCAMChip(
                    lambda: build_array(spec, geometry),
                    n_banks=banks_per_chip,
                    gating=gating,
                )
                for _ in range(n_chips)
            ]
            self.load_energy = self._load(signatures)
            if use_kernel:
                donor = self._banks()[0].enable_kernel()
                # Binary signatures drive every column, so the whole
                # workload lives on one driven value; compile it eagerly
                # and share the tables with every other bank.
                donor.precompute([self.dims])
                donor.window_row(self.dims)
                for bank in self._banks()[1:]:
                    bank.enable_kernel().adopt_tables(donor)

    def _banks(self):
        return [bank for chip in self.chips for bank in chip.banks]

    @property
    def n_banks(self) -> int:
        """Active shard count (banks holding at least one entry)."""
        return self._active_banks

    def _load(self, signatures: np.ndarray):
        from ..energy.accounting import EnergyLedger

        ledger = EnergyLedger()
        rows_per_chip = self.chips[0].rows_total if self.chips else 0
        for c, chip in enumerate(self.chips):
            block = signatures[c * rows_per_chip : (c + 1) * rows_per_chip]
            words = [TernaryWord(row) for row in block]
            ledger.merge(chip.load_rows(words))
        return ledger

    def _keys(self, queries: np.ndarray) -> list[TernaryWord]:
        queries = np.asarray(queries, dtype=np.int8)
        if queries.ndim != 2 or queries.shape[1] != self.dims:
            raise WorkloadError(
                f"queries must be (n, {self.dims}), got {queries.shape}"
            )
        return [TernaryWord(row) for row in queries]

    def _shard_rows(self):
        """Yield ``(bank, global_row_base)`` over every *active* shard."""
        base = 0
        emitted = 0
        for chip in self.chips:
            for bank in chip.banks:
                if emitted >= self._active_banks:
                    return
                yield bank, base
                base += self.bank_rows
                emitted += 1

    # -- query paths --------------------------------------------------------

    def query_topk(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, QueryStats]:
        """Exact global top-k by per-shard top-k + merge.

        Returns ``(rows, distances, stats)``: ``(n_queries, k)`` global
        row indices in ``(distance, row)`` order, their distances, and
        the batch's cost statistics.
        """
        keys = self._keys(queries)
        n_q = len(keys)
        with obs.span("workload.retrieval.topk", n_queries=n_q, k=k):
            energy = np.zeros(n_q)
            latency = np.zeros(n_q)
            cand_rows: list[list[int]] = [[] for _ in range(n_q)]
            cand_dist: list[list[int]] = [[] for _ in range(n_q)]
            for bank, base in self._shard_rows():
                for q, out in enumerate(bank.topk_match_batch(keys, k)):
                    energy[q] += out.energy.total
                    latency[q] = max(latency[q], out.search_delay)
                    cand_rows[q].extend(base + r for r in out.rows)
                    cand_dist[q].extend(out.distances)
            k_eff = min(k, self.n_entries)
            rows = np.empty((n_q, k_eff), dtype=np.int64)
            dists = np.empty((n_q, k_eff), dtype=np.int64)
            for q in range(n_q):
                r = np.asarray(cand_rows[q], dtype=np.int64)
                d = np.asarray(cand_dist[q], dtype=np.int64)
                order = np.lexsort((r, d))[:k_eff]
                rows[q] = r[order]
                dists[q] = d[order]
            return rows, dists, _stats(n_q, energy, latency)

    def query_threshold(
        self, queries: np.ndarray, max_distance: int
    ) -> tuple[list[set[int]], QueryStats]:
        """Tolerance-``max_distance`` match: global candidate row sets.

        Returns ``(candidates, stats)`` where ``candidates[q]`` is the
        set of global rows within the Hamming tolerance of query ``q``.
        """
        keys = self._keys(queries)
        n_q = len(keys)
        with obs.span(
            "workload.retrieval.threshold",
            n_queries=n_q,
            max_distance=max_distance,
        ):
            energy = np.zeros(n_q)
            latency = np.zeros(n_q)
            candidates: list[set[int]] = [set() for _ in range(n_q)]
            for bank, base in self._shard_rows():
                for q, out in enumerate(bank.threshold_match_batch(keys, max_distance)):
                    energy[q] += out.energy.total
                    latency[q] = max(latency[q], out.search_delay)
                    if out.n_matches:
                        candidates[q].update(
                            (base + np.flatnonzero(out.match_mask)).tolist()
                        )
            return candidates, _stats(n_q, energy, latency)

    def exact_search_baseline(self, queries: np.ndarray) -> QueryStats:
        """Exhaustive exact-match scan of every shard (the energy bar).

        What a conventional exact-match deployment pays per query:
        every bank's full search pipeline, evaluation window and
        restore, with no tolerance to trade.
        """
        keys = self._keys(queries)
        n_q = len(keys)
        with obs.span("workload.retrieval.exact_baseline", n_queries=n_q):
            energy = np.zeros(n_q)
            latency = np.zeros(n_q)
            for bank, _base in self._shard_rows():
                for q, out in enumerate(bank.search_batch(keys)):
                    energy[q] += out.energy.total
                    latency[q] = max(latency[q], out.search_delay)
            return _stats(n_q, energy, latency)


# ---------------------------------------------------------------------------
# End-to-end campaign (shared by the CLI and the benchmark)
# ---------------------------------------------------------------------------


def run_retrieval(
    *,
    n_entries: int = 100_000,
    dims: int = 64,
    n_queries: int = 64,
    k: int = 10,
    thresholds: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    design: str = "fefet2t",
    bank_rows: int = 256,
    banks_per_chip: int = 16,
    seed: int = 0,
    use_kernel: bool = True,
) -> dict:
    """Build a corpus + index, sweep the tolerance, score the frontier.

    Returns a JSON-ready record: corpus/shard shape, the exact top-k
    path (recall is 1.0 by construction -- asserted against the numpy
    oracle), the per-threshold recall/energy/latency frontier, and the
    exhaustive exact-search energy baseline.
    """
    config = CorpusConfig(n_entries=n_entries, dims=dims)
    signatures = synthetic_corpus(config, seed=seed)
    queries, _source = make_queries(
        signatures, n_queries, config.query_noise, seed=seed + 1
    )
    truth = exact_topk(signatures, queries, k)

    index = RetrievalIndex(
        signatures,
        design=design,
        bank_rows=bank_rows,
        banks_per_chip=banks_per_chip,
        use_kernel=use_kernel,
    )

    rows, _dists, topk_stats = index.query_topk(queries, k)
    topk_recall = recall_at_k(rows, truth)

    baseline = index.exact_search_baseline(queries)

    sweep = []
    for t in thresholds:
        candidates, stats = index.query_threshold(queries, t)
        sweep.append(
            {
                "max_distance": int(t),
                "recall_at_k": recall_at_k(candidates, truth),
                "mean_candidates": float(
                    np.mean([len(c) for c in candidates])
                ),
                "energy_per_query": stats.energy_per_query,
                "latency_mean": stats.latency_mean,
                "energy_vs_exact_baseline": (
                    stats.energy_per_query / baseline.energy_per_query
                ),
            }
        )

    return {
        "design": design,
        "n_entries": int(n_entries),
        "dims": int(dims),
        "n_queries": int(n_queries),
        "k": int(k),
        "seed": int(seed),
        "use_kernel": bool(use_kernel),
        "n_banks": index.n_banks,
        "n_chips": len(index.chips),
        "bank_rows": int(bank_rows),
        "load_energy_total": index.load_energy.total,
        "topk": {
            "recall_at_k": topk_recall,
            "energy_per_query": topk_stats.energy_per_query,
            "latency_mean": topk_stats.latency_mean,
        },
        "exact_baseline": {
            "energy_per_query": baseline.energy_per_query,
            "latency_mean": baseline.latency_mean,
        },
        "threshold_sweep": sweep,
    }
