"""Byte-signature scanning (deep packet inspection) on a TCAM.

Network intrusion detection stores malware/protocol signatures in a TCAM
and slides the payload past it one byte at a time; every window position
is one search.  Wildcard bytes inside a signature and the unconstrained
tail beyond its length map directly onto don't-care columns.

Payload boundaries need care: a window hanging off the end of the payload
must not let a long signature "match" against missing bytes.  Each window
byte therefore carries a ninth *valid* trit: real payload bytes search
``1`` there, past-end positions search ``0``, and every byte a signature
constrains (specified or wildcard) stores ``1`` -- so a signature can only
match where all of its bytes actually exist.  This mirrors the per-byte
valid lane real scan engines add for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import WorkloadError
from ..tcam.array import TCAMArray
from ..tcam.trit import TernaryWord, Trit

BITS_PER_BYTE = 8
TRITS_PER_BYTE = BITS_PER_BYTE + 1  # data bits + the valid lane


def _stored_byte_trits(value: int | None) -> list[Trit]:
    """Nine stored trits for one signature byte (``None`` = wildcard).

    The leading valid trit is 1: the byte must exist in the payload.
    """
    if value is None:
        return [Trit.ONE] + [Trit.X] * BITS_PER_BYTE
    if not 0 <= value <= 0xFF:
        raise WorkloadError(f"byte value {value} outside [0, 255]")
    return [Trit.ONE] + [Trit((value >> (7 - i)) & 1) for i in range(BITS_PER_BYTE)]


def _key_byte_trits(value: int | None) -> list[Trit]:
    """Nine key trits for one window byte (``None`` = past payload end)."""
    if value is None:
        return [Trit.ZERO] + [Trit.X] * BITS_PER_BYTE
    if not 0 <= value <= 0xFF:
        raise WorkloadError(f"byte value {value} outside [0, 255]")
    return [Trit.ONE] + [Trit((value >> (7 - i)) & 1) for i in range(BITS_PER_BYTE)]


@dataclass(frozen=True)
class Signature:
    """One byte signature.

    Attributes:
        sig_id: Opaque identifier reported on a hit.
        pattern: Byte values; ``None`` entries match any byte.
    """

    sig_id: int
    pattern: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if not self.pattern:
            raise WorkloadError("signature pattern must be non-empty")
        if all(b is None for b in self.pattern):
            raise WorkloadError("signature must constrain at least one byte")
        for b in self.pattern:
            if b is not None and not 0 <= b <= 0xFF:
                raise WorkloadError(f"byte value {b} outside [0, 255]")

    def __len__(self) -> int:
        return len(self.pattern)

    def matches_at(self, payload: bytes, position: int) -> bool:
        """Software oracle: does the signature match at ``position``?"""
        if position < 0 or position + len(self.pattern) > len(payload):
            return False
        for offset, expected in enumerate(self.pattern):
            if expected is not None and payload[position + offset] != expected:
                return False
        return True

    def to_word(self, window_bytes: int) -> TernaryWord:
        """TCAM image anchored at the window start, X-padded to the window."""
        if len(self.pattern) > window_bytes:
            raise WorkloadError(
                f"signature of {len(self.pattern)} bytes exceeds the "
                f"{window_bytes}-byte window"
            )
        trits: list[Trit] = []
        for b in self.pattern:
            trits.extend(_stored_byte_trits(b))
        trits.extend([Trit.X] * (TRITS_PER_BYTE * (window_bytes - len(self.pattern))))
        return TernaryWord(trits)


def window_key(payload: bytes, position: int, window_bytes: int) -> TernaryWord:
    """Search key for the window starting at ``position``.

    Window bytes past the payload end search ``0`` on their valid lane,
    so only signatures that fully fit in the remaining bytes can match.
    """
    if position < 0 or position >= len(payload):
        raise WorkloadError(f"position {position} outside the payload")
    index = position + np.arange(window_bytes)
    in_payload = index < len(payload)
    values = np.zeros(window_bytes, dtype=np.int64)
    values[in_payload] = np.frombuffer(payload, dtype=np.uint8)[index[in_payload]]
    trits = np.empty((window_bytes, TRITS_PER_BYTE), dtype=np.int8)
    trits[:, 0] = np.where(in_payload, int(Trit.ONE), int(Trit.ZERO))
    bit_shifts = np.arange(BITS_PER_BYTE - 1, -1, -1)
    trits[:, 1:] = (values[:, np.newaxis] >> bit_shifts) & 1
    trits[~in_payload, 1:] = int(Trit.X)
    return TernaryWord(trits.reshape(-1))


@dataclass(frozen=True)
class ScanHit:
    """One signature hit.

    Attributes:
        position: Payload byte offset of the window that matched.
        sig_id: The matching signature's identifier.
    """

    position: int
    sig_id: int


class SignatureSet:
    """A compiled signature database.

    Args:
        signatures: The signatures to compile.
        window_bytes: Sliding-window width; must fit the longest signature.
    """

    def __init__(self, signatures: list[Signature], window_bytes: int) -> None:
        if not signatures:
            raise WorkloadError("signature set must be non-empty")
        if window_bytes < 1:
            raise WorkloadError(f"window must be >= 1 byte, got {window_bytes}")
        longest = max(len(s) for s in signatures)
        if longest > window_bytes:
            raise WorkloadError(
                f"window of {window_bytes} bytes cannot hold a "
                f"{longest}-byte signature"
            )
        self.signatures = list(signatures)
        self.window_bytes = window_bytes

    @property
    def word_width(self) -> int:
        """TCAM word width in trits (nine per byte: valid lane + data)."""
        return self.window_bytes * TRITS_PER_BYTE

    def words(self) -> list[TernaryWord]:
        """TCAM images in signature order."""
        return [s.to_word(self.window_bytes) for s in self.signatures]

    def deploy(self, array: TCAMArray) -> None:
        """Load the compiled set into a matching-width array."""
        if array.geometry.cols != self.word_width:
            raise WorkloadError(
                f"signature scan needs a {self.word_width}-column array, "
                f"got {array.geometry.cols}"
            )
        if array.geometry.rows < len(self.signatures):
            raise WorkloadError(
                f"{len(self.signatures)} signatures do not fit in "
                f"{array.geometry.rows} rows"
            )
        array.load(self.words())

    def scan_reference(self, payload: bytes) -> list[ScanHit]:
        """Software oracle: first-matching-signature per window position."""
        hits = []
        for position in range(len(payload)):
            for sig in self.signatures:
                if sig.matches_at(payload, position):
                    hits.append(ScanHit(position=position, sig_id=sig.sig_id))
                    break
        return hits

    def scan_tcam(self, array: TCAMArray, payload: bytes) -> tuple[list[ScanHit], float]:
        """Slide the payload past the TCAM; returns (hits, total energy [J]).

        All window positions go through :meth:`TCAMArray.search_batch` in
        one call; the sliding window revisits the same few mismatch
        classes at every position, so nearly the whole scan is served
        from the trajectory cache.
        """
        if not payload:
            return [], 0.0
        with obs.span(
            "workload.dpi.scan",
            payload_bytes=len(payload),
            n_signatures=len(self.signatures),
        ):
            keys = [
                window_key(payload, position, self.window_bytes)
                for position in range(len(payload))
            ]
            outcomes = array.search_batch(keys)
        hits = []
        energy = 0.0
        for position, outcome in enumerate(outcomes):
            energy += outcome.energy_total
            if outcome.first_match is not None and outcome.first_match < len(self.signatures):
                hits.append(
                    ScanHit(
                        position=position,
                        sig_id=self.signatures[outcome.first_match].sig_id,
                    )
                )
        return hits, energy


def synthetic_signatures(
    n_signatures: int,
    rng: np.random.Generator,
    min_bytes: int = 4,
    max_bytes: int = 8,
    wildcard_fraction: float = 0.1,
) -> list[Signature]:
    """Draw random signatures with interior wildcard bytes.

    The first and last bytes are always specified (an all-wildcard edge
    would make the signature alias against everything).
    """
    if n_signatures < 1:
        raise WorkloadError(f"n_signatures must be >= 1, got {n_signatures}")
    if not 1 <= min_bytes <= max_bytes:
        raise WorkloadError(f"invalid length range [{min_bytes}, {max_bytes}]")
    if not 0.0 <= wildcard_fraction < 1.0:
        raise WorkloadError(
            f"wildcard_fraction must be in [0, 1), got {wildcard_fraction}"
        )
    signatures = []
    for sig_id in range(n_signatures):
        length = int(rng.integers(min_bytes, max_bytes + 1))
        pattern: list[int | None] = [int(b) for b in rng.integers(0, 256, size=length)]
        for i in range(1, length - 1):
            if rng.random() < wildcard_fraction:
                pattern[i] = None
        signatures.append(Signature(sig_id=sig_id, pattern=tuple(pattern)))
    return signatures


def plant_signatures(
    payload: bytearray,
    signatures: list[Signature],
    positions: list[tuple[int, int]],
) -> bytes:
    """Overwrite ``payload`` with signature bytes at given positions.

    Args:
        payload: Mutable byte buffer.
        signatures: Signature pool (indexed by the pairs below).
        positions: ``(signature_index, byte_offset)`` pairs to plant.

    Wildcard bytes inside a planted signature leave the payload byte
    untouched (any value matches).
    """
    for sig_index, offset in positions:
        if not 0 <= sig_index < len(signatures):
            raise WorkloadError(f"signature index {sig_index} out of range")
        sig = signatures[sig_index]
        if offset < 0 or offset + len(sig) > len(payload):
            raise WorkloadError(
                f"signature {sig_index} does not fit at offset {offset}"
            )
        for i, value in enumerate(sig.pattern):
            if value is not None:
                payload[offset + i] = value
    return bytes(payload)
