"""Cross-validation of the closed-form energy model against simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.analytic import estimate_search_energy, relative_error
from repro.core import build_array, get_design
from repro.energy import EnergyComponent, EnergyLedger
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry, random_word


def _simulated_mean(design: str, rows=32, cols=64, n=10, seed=0) -> EnergyLedger:
    rng = np.random.default_rng(seed)
    array = build_array(get_design(design), ArrayGeometry(rows, cols))
    array.load([random_word(cols, rng) for _ in range(rows)])
    total = EnergyLedger()
    array.search(random_word(cols, rng))  # warm the SL state
    for _ in range(n):
        total.merge(array.search(random_word(cols, rng)).energy)
    return total.scaled(1.0 / n), array


class TestCrossValidation:
    @pytest.mark.parametrize("design", ["cmos16t", "fefet2t", "fefet2t_lv"])
    def test_total_within_30_percent(self, design):
        simulated, array = _simulated_mean(design)
        estimate = estimate_search_energy(array)
        sim_dynamic = simulated.total - simulated.get(EnergyComponent.LEAKAGE)
        assert relative_error(estimate.total, sim_dynamic) < 0.30, design

    def test_ml_component_within_20_percent(self):
        simulated, array = _simulated_mean("fefet2t")
        estimate = estimate_search_energy(array)
        sim_ml = simulated.get(EnergyComponent.ML_PRECHARGE)
        assert relative_error(estimate.e_ml, sim_ml) < 0.20

    def test_sl_component_within_35_percent(self):
        simulated, array = _simulated_mean("fefet2t")
        estimate = estimate_search_energy(array)
        sim_sl = simulated.get(EnergyComponent.SEARCHLINE)
        assert relative_error(estimate.e_sl, sim_sl) < 0.35

    def test_estimate_scales_linearly_with_rows(self):
        _, small = _simulated_mean("fefet2t", rows=16, n=1)
        _, large = _simulated_mean("fefet2t", rows=64, n=1)
        e_small = estimate_search_energy(small)
        e_large = estimate_search_energy(large)
        assert e_large.e_ml == pytest.approx(4 * e_small.e_ml, rel=1e-6)


class TestValidation:
    def test_rejects_race_arrays(self):
        array = build_array(get_design("fefet_cr"), ArrayGeometry(4, 16))
        with pytest.raises(AnalysisError):
            estimate_search_energy(array)

    def test_rejects_bad_probability(self):
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        with pytest.raises(AnalysisError):
            estimate_search_energy(array, p_row_discharge=1.5)

    def test_relative_error_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            relative_error(1.0, 0.0)
