"""Tests for the write-disturb analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.disturb import (
    V_HALF,
    V_THIRD,
    DisturbAnalysis,
    WriteScheme,
)
from repro.devices.preisach import PreisachModel, SwitchingPulse
from repro.devices.material import HZO_10NM
from repro.errors import AnalysisError, DeviceError
from repro.tcam.cells.fefet2t import default_fefet_cell_params

PARAMS = default_fefet_cell_params()


class TestExpectationPrimitive:
    def test_zero_pulses_is_identity(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        m.saturate(1)
        pulse = SwitchingPulse(-2.0, 100e-9)
        assert m.expected_polarization_after_pulses(pulse, 0) == pytest.approx(1.0)

    def test_expectation_does_not_mutate(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        m.saturate(1)
        m.expected_polarization_after_pulses(SwitchingPulse(-2.0, 100e-9), 1000)
        assert m.normalized_polarization == pytest.approx(1.0)

    def test_monotone_in_pulse_count(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        m.saturate(1)
        pulse = SwitchingPulse(-2.0, 100e-9)
        values = [m.expected_polarization_after_pulses(pulse, n) for n in (1, 10, 100, 1000)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_aligned_pulse_changes_nothing(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        m.saturate(1)
        pulse = SwitchingPulse(2.0, 100e-9)  # same direction as the state
        assert m.expected_polarization_after_pulses(pulse, 10**6) == pytest.approx(1.0)

    def test_many_strong_pulses_saturate_opposite(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        m.saturate(1)
        pulse = SwitchingPulse(-4.0, 100e-9)
        assert m.expected_polarization_after_pulses(pulse, 100) == pytest.approx(-1.0, abs=1e-6)

    def test_rejects_negative_count(self):
        m = PreisachModel(HZO_10NM, rng=np.random.default_rng(0))
        with pytest.raises(DeviceError):
            m.expected_polarization_after_pulses(SwitchingPulse(-2.0, 1e-7), -1)


class TestSchemes:
    def test_scheme_validation(self):
        with pytest.raises(AnalysisError):
            WriteScheme(name="bad", disturb_fraction=1.0)

    def test_half_select_degrades(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        assert da.point(10**4).retention_fraction < 0.9

    def test_third_select_immune_to_1e8(self):
        da = DisturbAnalysis(PARAMS, V_THIRD)
        assert da.point(10**8).retention_fraction > 0.98

    def test_vt_shift_monotone(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        shifts = [da.point(n).vt_shift for n in (0, 10, 1000, 10**5)]
        assert all(b >= a for a, b in zip(shifts, shifts[1:]))
        assert shifts[0] == 0.0

    def test_trajectory_matches_points(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        traj = da.trajectory([0, 100])
        assert traj[0].vt_shift == da.point(0).vt_shift
        assert traj[1].vt_shift == da.point(100).vt_shift

    def test_point_rejects_negative(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        with pytest.raises(AnalysisError):
            da.point(-1)


class TestLifetimeSearch:
    def test_half_select_hits_shift_quickly(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        n = da.pulses_to_vt_shift(0.1)
        assert n is not None
        assert da.point(n).vt_shift >= 0.1
        if n > 0:
            assert da.point(n - 1).vt_shift < 0.1

    def test_third_select_never_hits(self):
        da = DisturbAnalysis(PARAMS, V_THIRD)
        assert da.pulses_to_vt_shift(0.1, n_max=10**9) is None

    def test_rejects_bad_target(self):
        da = DisturbAnalysis(PARAMS, V_HALF)
        with pytest.raises(AnalysisError):
            da.pulses_to_vt_shift(0.0)
