"""The design-space explorer: space construction, metrics, frontier."""

from __future__ import annotations

import pytest

from repro.analysis.dse import (
    MAXIMIZE,
    MINIMIZE,
    DesignPoint,
    default_space,
    evaluate_point,
    pareto_frontier,
    run_dse,
)
from repro.errors import AnalysisError
from repro.tcam.cells import list_cells


class TestSpaceConstruction:
    def test_default_space_covers_every_registered_cell(self):
        cells = {p.cell for p in default_space()}
        assert cells == set(list_cells())

    def test_current_race_only_at_flat_coordinates(self):
        space = default_space(cells=["fefet2t"], segments=(0, 4), cols=(16,))
        for p in space:
            if p.sensing == "current_race":
                assert p.segments == 0

    def test_degenerate_probe_widths_skipped(self):
        space = default_space(cells=["fefet2t"], segments=(0, 16, 99), cols=(16,))
        assert all(p.segments < 16 for p in space)

    def test_labels_are_unique(self):
        space = default_space(segments=(0, 4), vdds=(None, 0.8))
        labels = [p.label() for p in space]
        assert len(labels) == len(set(labels))

    def test_seed_key_is_stable_and_point_specific(self):
        a = DesignPoint("fefet2t", 8, 16)
        b = DesignPoint("fefet2t", 8, 16)
        c = DesignPoint("seemcam", 8, 16)
        assert a.seed_key(3) == b.seed_key(3)
        assert a.seed_key(3) != c.seed_key(3)
        assert a.seed_key(3) != a.seed_key(4)


class TestEvaluatePoint:
    def test_metrics_shape_and_signs(self):
        row = evaluate_point(DesignPoint("fefet2t", 8, 16), searches=2)
        for key in MINIMIZE:
            assert row[key] > 0.0
        assert 0.0 < row["accuracy"] <= 1.0
        assert row["functional_errors"] == 0
        assert row["stored_bits"] == 8 * 16
        assert row["label"] == "fefet2t/8x16/precharge"

    def test_multi_bit_cells_report_density(self):
        row = evaluate_point(DesignPoint("seemcam", 8, 16), searches=2)
        assert row["bits_per_cell"] == 2.0
        assert row["stored_bits"] == 2 * 8 * 16
        assert row["area_f2_per_bit"] < 74.0

    def test_segmented_point_cheaper_than_flat(self):
        flat = evaluate_point(DesignPoint("fefet2t", 16, 16), searches=4)
        seg = evaluate_point(
            DesignPoint("fefet2t", 16, 16, segments=4), searches=4
        )
        assert seg["energy_per_search"] < flat["energy_per_search"]

    def test_kernel_path_is_bit_identical(self):
        point = DesignPoint("fefet2t", 8, 16)
        plain = evaluate_point(point, searches=4)
        kernel = evaluate_point(point, searches=4, use_kernel=True)
        assert plain == kernel

    def test_current_race_with_segments_rejected(self):
        bad = DesignPoint("fefet2t", 8, 16, segments=4, sensing="current_race")
        with pytest.raises(AnalysisError):
            evaluate_point(bad, searches=1)


class TestParetoFrontier:
    def test_dominated_rows_dropped(self):
        rows = [
            {m: 1.0 for m in (*MINIMIZE, *MAXIMIZE)},
            {m: 2.0 for m in MINIMIZE} | {m: 1.0 for m in MAXIMIZE},
        ]
        assert pareto_frontier(rows) == (0,)

    def test_trade_offs_both_survive(self):
        base = {m: 1.0 for m in (*MINIMIZE, *MAXIMIZE)}
        cheaper = dict(base, energy_per_bit=0.5, accuracy=0.9)
        assert pareto_frontier([base, cheaper]) == (0, 1)

    def test_equal_rows_both_survive(self):
        base = {m: 1.0 for m in (*MINIMIZE, *MAXIMIZE)}
        assert pareto_frontier([base, dict(base)]) == (0, 1)


class TestRunDSE:
    SPACE = default_space(
        cells=["fefet2t", "seemcam"], rows=(8,), cols=(16,), segments=(0,)
    )

    def test_empty_space_rejected(self):
        with pytest.raises(AnalysisError):
            run_dse([])

    def test_frontier_is_subset_of_cloud(self):
        result = run_dse(self.SPACE, searches=2)
        assert len(result.points) == len(self.SPACE)
        for idx in result.frontier_indices:
            assert result.points[idx] in result.frontier

    def test_rows_identical_across_worker_counts(self):
        serial = run_dse(self.SPACE, searches=2, workers=0)
        parallel = run_dse(self.SPACE, searches=2, workers=2)
        assert serial.points == parallel.points
        assert serial.frontier_indices == parallel.frontier_indices

    def test_error_points_reported_but_not_on_frontier(self, monkeypatch):
        # A functionally broken point stays in the cloud with its error
        # count but is barred from the frontier -- even when its metrics
        # would otherwise dominate everything.
        import repro.analysis.dse as dse_mod

        real = dse_mod.evaluate_point

        def flaky(point, **kwargs):
            row = real(point, **kwargs)
            if point.cell == "seemcam":
                row = dict(
                    row,
                    functional_errors=3,
                    energy_per_bit=row["energy_per_bit"] * 1e-6,
                )
            return row

        monkeypatch.setattr(dse_mod, "evaluate_point", flaky)
        result = dse_mod.run_dse(self.SPACE, searches=2)
        broken = [p for p in result.points if p["functional_errors"] > 0]
        assert broken
        for row in result.frontier:
            assert row["functional_errors"] == 0
            assert row["cell"] != "seemcam"

    def test_to_dict_round_trips_through_json(self):
        import json

        result = run_dse(self.SPACE, searches=2)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["n_points"] == len(self.SPACE)
        assert payload["frontier_size"] == len(result.frontier_indices)
        assert set(payload["frontier_cells"]) <= {"fefet2t", "seemcam"}
