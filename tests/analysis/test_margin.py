"""Tests for the deterministic margin analysis."""

from __future__ import annotations

import pytest

from repro.analysis.margin import worst_case_margin
from repro.errors import AnalysisError
from repro.tcam.cells import FeFET2TCell, ReRAM2T2RCell

CELL = FeFET2TCell()
C_ML = 10e-15
T_EVAL = 100e-12


def _margin(**overrides):
    base = dict(
        cell=CELL,
        c_ml=C_ML,
        cols=64,
        v_precharge=0.9,
        v_supply=0.9,
        v_sense=0.45,
        t_eval=T_EVAL,
    )
    base.update(overrides)
    return worst_case_margin(**base)


class TestNominal:
    def test_healthy_margin_positive_and_functional(self):
        result = _margin()
        assert result.margin > 0.3
        assert result.functional

    def test_match_above_miss(self):
        result = _margin()
        assert result.v_match > result.v_single_miss

    def test_longer_eval_discharges_miss_further(self):
        quick = _margin(t_eval=20e-12)
        slow = _margin(t_eval=200e-12)
        assert slow.v_single_miss <= quick.v_single_miss


class TestInjectedCorners:
    def test_weak_pulldown_shrinks_margin(self):
        nominal = _margin()
        weak = _margin(pulldown_vt_offset=0.3)
        assert weak.margin < nominal.margin

    def test_extreme_weak_pulldown_fails_miss_detection(self):
        broken = _margin(pulldown_vt_offset=1.0, t_eval=20e-12)
        assert not broken.miss_read_correctly
        assert not broken.functional

    def test_heavy_leakage_drops_match_line(self):
        nominal = _margin()
        leaky = _margin(leak_scale=1e5)
        assert leaky.v_match < nominal.v_match

    def test_extreme_leakage_fails_match_detection(self):
        broken = _margin(leak_scale=5e6, t_eval=500e-12)
        assert not broken.match_read_correctly

    def test_reram_margin_smaller_than_fefet(self):
        fefet = _margin()
        reram = _margin(cell=ReRAM2T2RCell())
        assert reram.margin < fefet.margin


class TestValidation:
    def test_rejects_zero_cols(self):
        with pytest.raises(AnalysisError):
            _margin(cols=0)

    def test_rejects_negative_leak_scale(self):
        with pytest.raises(AnalysisError):
            _margin(leak_scale=-1.0)

    def test_rejects_sense_outside_window(self):
        with pytest.raises(AnalysisError):
            _margin(v_sense=0.95)
