"""Tests for the Monte-Carlo margin engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import run_margin_mc
from repro.core import build_array, get_design
from repro.devices.variability import NO_VARIATION, NOMINAL_VARIATION
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(8, 32)


@pytest.fixture(scope="module")
def fefet_arr():
    return build_array(get_design("fefet2t"), GEO)


class TestBasics:
    def test_no_variation_is_deterministic(self, fefet_arr):
        mc = run_margin_mc(fefet_arr, NO_VARIATION, n_samples=20)
        assert mc.margin_sigma == pytest.approx(0.0, abs=1e-12)
        assert mc.failure_rate == 0.0

    def test_no_variation_matches_nominal_margin(self, fefet_arr):
        mc = run_margin_mc(fefet_arr, NO_VARIATION, n_samples=5)
        assert mc.margin_mean == pytest.approx(fefet_arr.sense_margin(), rel=1e-6)

    def test_seeded_runs_reproducible(self, fefet_arr):
        a = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=50, seed=7)
        b = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=50, seed=7)
        assert np.array_equal(a.margins, b.margins)

    def test_different_seeds_differ(self, fefet_arr):
        a = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=50, seed=7)
        b = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=50, seed=8)
        assert not np.array_equal(a.margins, b.margins)

    def test_variation_spreads_margins(self, fefet_arr):
        mc = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=100)
        assert mc.margin_sigma > 0.01

    def test_percentiles_ordered(self, fefet_arr):
        mc = run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=100)
        assert mc.margin_percentile(1) <= mc.margin_percentile(50) <= mc.margin_percentile(99)

    def test_percentile_range_checked(self, fefet_arr):
        mc = run_margin_mc(fefet_arr, NO_VARIATION, n_samples=5)
        with pytest.raises(AnalysisError):
            mc.margin_percentile(101)

    def test_rejects_race_arrays(self):
        arr = build_array(get_design("fefet_cr"), GEO)
        with pytest.raises(AnalysisError):
            run_margin_mc(arr, NOMINAL_VARIATION, n_samples=5)

    def test_rejects_zero_samples(self, fefet_arr):
        with pytest.raises(AnalysisError):
            run_margin_mc(fefet_arr, NOMINAL_VARIATION, n_samples=0)


class TestDesignComparisons:
    def test_lv_margin_mean_smaller_than_full_swing(self):
        full = build_array(get_design("fefet2t"), GEO)
        lv = build_array(get_design("fefet2t_lv"), GEO)
        mc_full = run_margin_mc(full, NOMINAL_VARIATION, n_samples=100)
        mc_lv = run_margin_mc(lv, NOMINAL_VARIATION, n_samples=100)
        assert mc_lv.margin_mean < mc_full.margin_mean

    def test_huge_variation_causes_failures(self, fefet_arr):
        wild = NOMINAL_VARIATION.scaled(10.0)
        mc = run_margin_mc(fefet_arr, wild, n_samples=200)
        assert mc.failure_rate > 0.0

    def test_failure_rate_monotone_in_sigma_scale(self, fefet_arr):
        rates = []
        for scale in (1.0, 5.0, 12.0):
            mc = run_margin_mc(
                fefet_arr, NOMINAL_VARIATION.scaled(scale), n_samples=200, seed=3
            )
            rates.append(mc.failure_rate)
        assert rates[0] <= rates[1] <= rates[2]
