"""Tests for the full per-cell Monte-Carlo array simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo_array import (
    SampledFeFETArray,
    critical_keys,
)
from repro.devices.mosfet import ekv_current, ekv_current_vec
from repro.devices.variability import NOMINAL_VARIATION, NO_VARIATION
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry, random_word
from repro.units import thermal_voltage

GEO = ArrayGeometry(8, 24)


def _campaign(spec, seed=1, rows=8, cols=24, per_word=2):
    rng = np.random.default_rng(0)
    words = [random_word(cols, rng, x_fraction=0.2) for _ in range(rows)]
    keys = critical_keys(words, rng, per_word=per_word)
    array = SampledFeFETArray(
        ArrayGeometry(rows, cols), spec, np.random.default_rng(seed)
    )
    array.load(words)
    return array.run_campaign(keys)


class TestVectorizedEKV:
    def test_matches_scalar_elementwise(self):
        phi = thermal_voltage(300.0)
        vts = np.array([-0.1, 0.2, 0.4, 0.9, 1.6])
        vec = ekv_current_vec(1.1, 0.6, vts, 1e-3, 1.35, phi, 0.08)
        for vt, i in zip(vts, vec):
            assert i == pytest.approx(
                ekv_current(1.1, 0.6, float(vt), 1e-3, 1.35, phi, 0.08), rel=1e-12
            )

    def test_rejects_negative_vds(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            ekv_current_vec(1.0, -0.1, np.array([0.4]), 1e-3, 1.3, 0.026)


class TestCriticalKeys:
    def test_contains_exact_match_per_word(self, rng):
        words = [random_word(16, rng, x_fraction=0.3) for _ in range(4)]
        keys = critical_keys(words, rng, per_word=2)
        assert len(keys) == 8
        for word, key in zip(words, keys[::2]):
            assert word.matches(key)
            assert key.x_count() == 0

    def test_near_keys_at_distance_one(self, rng):
        words = [random_word(16, rng) for _ in range(4)]
        keys = critical_keys(words, rng, per_word=2)
        for word, near in zip(words, keys[1::2]):
            assert word.mismatch_count(near) == 1

    def test_rejects_bad_per_word(self, rng):
        with pytest.raises(AnalysisError):
            critical_keys([random_word(8, rng)], rng, per_word=0)


class TestSampledArray:
    def test_no_variation_no_errors(self):
        result = _campaign(NO_VARIATION)
        assert result.wrong_rows == 0
        assert result.search_error_rate == 0.0

    def test_nominal_corner_clean(self):
        result = _campaign(NOMINAL_VARIATION)
        assert result.row_error_rate == 0.0

    def test_errors_grow_with_sigma(self):
        rates = [
            _campaign(NOMINAL_VARIATION.scaled(s)).row_error_rate
            for s in (1.0, 6.0, 10.0)
        ]
        assert rates[0] <= rates[1] <= rates[2]
        assert rates[2] > 0.0

    def test_errors_confined_to_critical_distances(self):
        result = _campaign(NOMINAL_VARIATION.scaled(10.0))
        assert result.wrong_rows > 0
        # Every wrong decision sits at distance 0 (match lost) or 1
        # (near-miss misread); deep misses are unconditionally safe.
        assert set(result.errors_by_distance) <= {0, 1}

    def test_deterministic_under_seed(self):
        a = _campaign(NOMINAL_VARIATION.scaled(8.0), seed=3)
        b = _campaign(NOMINAL_VARIATION.scaled(8.0), seed=3)
        assert a.wrong_rows == b.wrong_rows

    def test_different_instances_differ(self):
        a = _campaign(NOMINAL_VARIATION.scaled(8.0), seed=3)
        b = _campaign(NOMINAL_VARIATION.scaled(8.0), seed=4)
        # Not guaranteed per-seed, but two instances at high sigma rarely
        # produce identical error maps; allow equality of totals only.
        assert a.n_row_decisions == b.n_row_decisions

    def test_load_validates(self):
        array = SampledFeFETArray(GEO, NO_VARIATION, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        with pytest.raises(AnalysisError):
            array.load([random_word(24, rng)] * 9)
        with pytest.raises(AnalysisError):
            array.load([random_word(8, rng)])

    def test_empty_campaign_rejected(self):
        array = SampledFeFETArray(GEO, NO_VARIATION, np.random.default_rng(0))
        with pytest.raises(AnalysisError):
            array.run_campaign([])
