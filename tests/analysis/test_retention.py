"""Tests for the calibrated retention model."""

from __future__ import annotations

import math

import pytest

from repro.analysis.retention import YEAR_SECONDS, RetentionModel
from repro.devices.material import HZO_10NM
from repro.errors import AnalysisError
from repro.units import celsius_to_kelvin

MODEL = RetentionModel(HZO_10NM)
T85 = celsius_to_kelvin(85.0)
T25 = celsius_to_kelvin(25.0)
T125 = celsius_to_kelvin(125.0)


class TestCalibration:
    def test_spec_point_reproduced(self):
        fraction = MODEL.retention_fraction(10 * YEAR_SECONDS, T85)
        assert fraction == pytest.approx(0.90, abs=0.005)

    def test_barrier_in_reported_range(self):
        """FeFET retention barriers are reported at 1.3-2.2 eV."""
        assert 1.0 < MODEL.barrier_scale_ev < 2.5

    def test_custom_spec_point_honoured(self):
        strict = RetentionModel(HZO_10NM, spec_loss=0.01)
        fraction = strict.retention_fraction(10 * YEAR_SECONDS, T85)
        assert fraction == pytest.approx(0.99, abs=0.005)


class TestShape:
    def test_zero_time_is_pristine(self):
        assert MODEL.retention_fraction(0.0, T85) == 1.0

    def test_monotone_in_time(self):
        times = [1.0, 1e3, 1e6, 1e9]
        fractions = [MODEL.retention_fraction(t, T85) for t in times]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))

    def test_monotone_in_temperature(self):
        t = 10 * YEAR_SECONDS
        assert (
            MODEL.retention_fraction(t, T25)
            > MODEL.retention_fraction(t, T85)
            > MODEL.retention_fraction(t, T125)
        )

    def test_room_temperature_nearly_immortal(self):
        assert MODEL.retention_fraction(10 * YEAR_SECONDS, T25) > 0.95

    def test_window_scales_with_retention(self):
        window = MODEL.vt_window_after(10 * YEAR_SECONDS, T85, memory_window=1.2)
        assert window == pytest.approx(1.2 * 0.90, abs=0.01)


class TestTimeToLoss:
    def test_spec_consistency(self):
        t = MODEL.time_to_loss(0.10, T85)
        assert t == pytest.approx(10 * YEAR_SECONDS, rel=0.02)

    def test_hotter_fails_sooner(self):
        assert MODEL.time_to_loss(0.10, T125) < MODEL.time_to_loss(0.10, T85)

    def test_unreachable_loss_is_infinite(self):
        cold = celsius_to_kelvin(-40.0)
        assert MODEL.time_to_loss(0.5, cold, t_max=YEAR_SECONDS) == math.inf


class TestValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(AnalysisError):
            MODEL.retention_fraction(-1.0, T85)

    def test_rejects_bad_temperature(self):
        with pytest.raises(AnalysisError):
            MODEL.retention_fraction(1.0, 0.0)

    def test_rejects_bad_loss(self):
        with pytest.raises(AnalysisError):
            MODEL.time_to_loss(0.0, T85)

    def test_rejects_bad_spec(self):
        with pytest.raises(AnalysisError):
            RetentionModel(HZO_10NM, spec_loss=1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(AnalysisError):
            MODEL.vt_window_after(1.0, T85, memory_window=0.0)
