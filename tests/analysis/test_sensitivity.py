"""Tests for the tornado sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    SensitivityEntry,
    default_energy_metric,
    default_margin_metric,
    tornado,
)
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(8, 32)


class TestEntry:
    def test_swing_definition(self):
        e = SensitivityEntry(parameter="p", low=0.9, nominal=1.0, high=1.1)
        assert e.swing_rel == pytest.approx(0.2)

    def test_zero_nominal_rejected(self):
        e = SensitivityEntry(parameter="p", low=0.9, nominal=0.0, high=1.1)
        with pytest.raises(AnalysisError):
            _ = e.swing_rel


class TestTornado:
    @pytest.fixture(scope="class")
    def energy_entries(self):
        return tornado(GEO, default_energy_metric(GEO))

    def test_covers_all_knobs(self, energy_entries):
        assert len(energy_entries) == 5
        names = {e.parameter for e in energy_entries}
        assert "fefet.memory_window" in names
        assert "fefet.width" in names

    def test_sorted_by_absolute_swing(self, energy_entries):
        swings = [abs(e.swing_rel) for e in energy_entries]
        assert swings == sorted(swings, reverse=True)

    def test_energy_rides_on_capacitances(self, energy_entries):
        """Search energy must be capacitance-dominated, not VT-dominated --
        the physical sanity check on the whole energy model."""
        top = energy_entries[0].parameter
        assert top in ("fefet.width", "fefet.c_junction_per_width")
        by_name = {e.parameter: e for e in energy_entries}
        assert abs(by_name["fefet.kp"].swing_rel) < 0.05

    def test_margin_rides_on_window(self):
        entries = tornado(GEO, default_margin_metric())
        assert entries[0].parameter == "fefet.memory_window"

    def test_wider_device_more_energy(self, energy_entries):
        by_name = {e.parameter: e for e in energy_entries}
        width = by_name["fefet.width"]
        assert width.high > width.low

    def test_rejects_bad_step(self):
        with pytest.raises(AnalysisError):
            tornado(GEO, default_margin_metric(), step_rel=1.5)
