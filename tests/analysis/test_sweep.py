"""Tests for the generic sweep harness."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import Sweep
from repro.errors import AnalysisError


class TestSweep:
    def test_collects_rows_in_order(self):
        sweep = Sweep(knob="n", values=[1, 2, 3], evaluate=lambda n: {"square": n * n})
        result = sweep.run()
        assert result.column("n") == [1, 2, 3]
        assert result.column("square") == [1, 4, 9]

    def test_series_pairs(self):
        sweep = Sweep(knob="n", values=[2, 4], evaluate=lambda n: {"double": 2 * n})
        result = sweep.run()
        x, y = result.series("double")
        assert x == [2, 4]
        assert y == [4, 8]

    def test_missing_column_raises(self):
        result = Sweep(knob="n", values=[1], evaluate=lambda n: {"a": 1}).run()
        with pytest.raises(AnalysisError):
            result.column("b")

    def test_conflicting_knob_value_raises(self):
        sweep = Sweep(knob="n", values=[1], evaluate=lambda n: {"n": 99})
        with pytest.raises(AnalysisError):
            sweep.run()

    def test_evaluator_may_echo_consistent_knob(self):
        sweep = Sweep(knob="n", values=[1], evaluate=lambda n: {"n": 1, "y": 0})
        assert sweep.run().column("y") == [0]

    def test_empty_values_empty_result(self):
        assert Sweep(knob="n", values=[], evaluate=lambda n: {}).run().rows == ()


def _fail_on_negative(v):
    if v < 0:
        raise RuntimeError("negative knob")
    return {"y": float(v)}


class TestSweepErrorPaths:
    def test_missing_column_names_the_column(self):
        result = Sweep(knob="n", values=[1, 2], evaluate=lambda n: {"a": n}).run()
        with pytest.raises(AnalysisError, match=r"no column 'missing'"):
            result.column("missing")

    def test_series_missing_y_column_raises(self):
        result = Sweep(knob="n", values=[1], evaluate=lambda n: {"a": n}).run()
        with pytest.raises(AnalysisError, match=r"no column 'b'"):
            result.series("b")

    def test_series_on_partial_rows_raises(self):
        # A column present in some rows but not all is still an error.
        result = Sweep(
            knob="n",
            values=[1, 2],
            evaluate=lambda n: {"odd": 1} if n % 2 else {"even": 0},
        ).run()
        with pytest.raises(AnalysisError, match=r"no column 'odd'"):
            result.column("odd")

    def test_evaluator_exception_names_failing_knob_value(self):
        sweep = Sweep(knob="bias", values=[1, -3, 2], evaluate=_fail_on_negative)
        with pytest.raises(AnalysisError, match=r"bias=-3.*negative knob"):
            sweep.run()

    def test_evaluator_exception_names_value_with_workers(self):
        sweep = Sweep(knob="bias", values=[1, -3, 2], evaluate=_fail_on_negative)
        with pytest.raises(AnalysisError, match=r"bias=-3.*negative knob"):
            sweep.run(workers=2)

    def test_evaluator_exception_preserves_cause_serially(self):
        sweep = Sweep(knob="bias", values=[-1], evaluate=_fail_on_negative)
        with pytest.raises(AnalysisError) as excinfo:
            sweep.run()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
