"""Tests for the derived figures of merit."""

from __future__ import annotations

import pytest

from repro.analysis.throughput import ThroughputReport, characterize
from repro.core import build_array, get_design
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(16, 32)


class TestReportAlgebra:
    def test_derived_quantities(self):
        r = ThroughputReport(energy_per_search=2e-12, cycle_time=1e-9, search_delay=5e-10)
        assert r.throughput == pytest.approx(1e9)
        assert r.power_at_rate == pytest.approx(2e-3)
        assert r.edp == pytest.approx(1e-21)
        assert r.searches_per_joule == pytest.approx(5e11)


class TestCharacterize:
    def test_positive_metrics_for_every_design(self, any_design):
        array = build_array(any_design, GEO)
        report = characterize(array, n_searches=2)
        assert report.energy_per_search > 0.0
        assert report.cycle_time > 0.0
        assert report.search_delay > 0.0

    def test_deterministic_under_seed(self):
        a = characterize(build_array(get_design("fefet2t"), GEO), n_searches=3)
        b = characterize(build_array(get_design("fefet2t"), GEO), n_searches=3)
        assert a.energy_per_search == b.energy_per_search

    def test_fefet_edp_beats_cmos(self):
        fefet = characterize(build_array(get_design("fefet2t"), GEO), n_searches=3)
        cmos = characterize(build_array(get_design("cmos16t"), GEO), n_searches=3)
        assert fefet.edp < cmos.edp

    def test_rejects_zero_searches(self):
        with pytest.raises(AnalysisError):
            characterize(build_array(get_design("fefet2t"), GEO), n_searches=0)
