"""Tests for failure-probability aggregation and the sigma sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.yieldest import failure_rate_vs_sigma, search_failure_probability
from repro.core import build_array, get_design
from repro.devices.variability import NOMINAL_VARIATION
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry


class TestAggregation:
    def test_zero_rate_stays_zero(self):
        assert search_failure_probability(0.0, 1024) == 0.0

    def test_certain_failure(self):
        assert search_failure_probability(1.0, 2) == 1.0

    def test_small_rate_scales_with_rows(self):
        p1 = search_failure_probability(1e-6, 1)
        p1024 = search_failure_probability(1e-6, 1024)
        assert p1024 == pytest.approx(1024 * p1, rel=1e-2)

    def test_bounded_by_one(self):
        assert search_failure_probability(0.01, 100000) <= 1.0

    def test_monotone_in_rows(self):
        assert search_failure_probability(0.001, 10) < search_failure_probability(
            0.001, 1000
        )

    def test_rejects_bad_rate(self):
        with pytest.raises(AnalysisError):
            search_failure_probability(1.5, 10)

    def test_rejects_bad_rows(self):
        with pytest.raises(AnalysisError):
            search_failure_probability(0.1, 0)


class TestSigmaSweep:
    def test_sweep_structure_and_monotone_failures(self):
        arr = build_array(get_design("fefet2t_lv"), ArrayGeometry(8, 32))
        results = failure_rate_vs_sigma(
            arr, NOMINAL_VARIATION, np.array([0.0, 4.0, 12.0]), n_samples=150
        )
        assert len(results) == 3
        scales = [s for s, _ in results]
        assert scales == [0.0, 4.0, 12.0]
        rates = [mc.failure_rate for _, mc in results]
        assert rates[0] == 0.0
        assert rates[0] <= rates[1] <= rates[2]

    def test_rejects_negative_scale(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        with pytest.raises(AnalysisError):
            failure_rate_vs_sigma(arr, NOMINAL_VARIATION, np.array([-1.0]), n_samples=5)
