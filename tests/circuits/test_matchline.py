"""Tests for the match-line discharge model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.matchline import (
    MatchLine,
    MatchLineLoad,
    ideal_discharge_delay,
)
from repro.errors import CircuitError

C_ML = 10e-15
I_PD = 20e-6   # strong pull-down
I_LK = 1e-9    # weak leak


def _load(n_miss: int, n_match: int) -> MatchLineLoad:
    return MatchLineLoad(
        capacitance=C_ML,
        n_miss=n_miss,
        n_match=n_match,
        i_pulldown=lambda v: I_PD if v > 0 else 0.0,
        i_leak=lambda v: I_LK if v > 0 else 0.0,
    )


class TestLoad:
    def test_total_current_sums_contributions(self):
        load = _load(2, 30)
        assert load.total_current(0.9) == pytest.approx(2 * I_PD + 30 * I_LK)

    def test_rejects_empty_line(self):
        with pytest.raises(CircuitError):
            _load(0, 0)

    def test_rejects_negative_counts(self):
        with pytest.raises(CircuitError):
            _load(-1, 4)

    def test_rejects_zero_capacitance(self):
        with pytest.raises(CircuitError):
            MatchLineLoad(0.0, 1, 0, lambda v: 1e-6, lambda v: 1e-9)


class TestTiming:
    def test_single_miss_matches_constant_current_estimate(self):
        ml = MatchLine(_load(1, 63), 0.9, 0.9)
        t = ml.time_to(0.45)
        ideal = ideal_discharge_delay(C_ML, I_PD, 0.9, 0.45)
        assert t == pytest.approx(ideal, rel=0.01)

    def test_more_misses_discharge_faster(self):
        t1 = MatchLine(_load(1, 63), 0.9, 0.9).time_to(0.45)
        t4 = MatchLine(_load(4, 60), 0.9, 0.9).time_to(0.45)
        assert t4 < t1
        assert t1 / t4 == pytest.approx(4.0, rel=0.05)

    def test_match_line_barely_moves(self):
        """64 cells x 1 nA over 200 ps on 10 fF droops ~1.3 mV."""
        ml = MatchLine(_load(0, 64), 0.9, 0.9)
        v = ml.voltage_after(200e-12)
        assert v == pytest.approx(0.9, abs=5e-3)
        assert v < 0.9

    def test_waveform_endpoint_agrees_with_voltage_after(self):
        ml = MatchLine(_load(1, 63), 0.9, 0.9)
        grid = np.linspace(0.0, 100e-12, 65)
        wf = ml.waveform(grid)
        assert wf[-1] == pytest.approx(ml.voltage_after(100e-12), abs=1e-3)

    def test_time_to_rejects_target_above_precharge(self):
        with pytest.raises(CircuitError):
            MatchLine(_load(1, 1), 0.9, 0.9).time_to(1.0)

    def test_rejects_supply_below_precharge(self):
        with pytest.raises(CircuitError):
            MatchLine(_load(1, 1), 0.9, 0.8)


class TestEvaluate:
    def test_miss_detected(self):
        ml = MatchLine(_load(1, 63), 0.9, 0.9)
        result = ml.evaluate(v_sense=0.45, t_eval=3 * ml.time_to(0.45))
        assert not result.is_match

    def test_match_detected(self):
        ml = MatchLine(_load(0, 64), 0.9, 0.9)
        result = ml.evaluate(v_sense=0.45, t_eval=200e-12)
        assert result.is_match

    def test_miss_energy_approximately_cv2(self):
        """A fully discharged line must be recharged: E ~ C * Vpre * Vdd."""
        ml = MatchLine(_load(4, 60), 0.9, 0.9)
        result = ml.evaluate(v_sense=0.45, t_eval=1e-9)
        assert result.energy_precharge == pytest.approx(C_ML * 0.9 * 0.9, rel=0.02)

    def test_match_energy_tiny(self):
        ml = MatchLine(_load(0, 64), 0.9, 0.9)
        result = ml.evaluate(v_sense=0.45, t_eval=200e-12)
        assert result.energy_precharge < 0.01 * C_ML * 0.81

    def test_energy_non_negative(self):
        for n in (0, 1, 8):
            ml = MatchLine(_load(n, 64 - n), 0.9, 0.9)
            r = ml.evaluate(0.45, 300e-12)
            assert r.energy_precharge >= 0.0
            assert r.energy_dissipated >= 0.0

    def test_rejects_sense_outside_range(self):
        ml = MatchLine(_load(1, 1), 0.9, 0.9)
        with pytest.raises(CircuitError):
            ml.evaluate(v_sense=1.2, t_eval=1e-10)


class TestMargin:
    def test_margin_positive_for_healthy_cell(self):
        ml = MatchLine(_load(0, 64), 0.9, 0.9)
        t_eval = 2 * MatchLine(_load(1, 63), 0.9, 0.9).time_to(0.45)
        margin = ml.worst_case_margin(t_eval, _load(1, 63))
        assert margin > 0.5

    def test_margin_requires_single_miss_rival(self):
        ml = MatchLine(_load(0, 64), 0.9, 0.9)
        with pytest.raises(CircuitError):
            ml.worst_case_margin(1e-10, _load(2, 62))


class TestIdealDelay:
    def test_formula(self):
        assert ideal_discharge_delay(10e-15, 10e-6, 0.9, 0.45) == pytest.approx(
            10e-15 * 0.45 / 10e-6
        )

    def test_zero_current_infinite(self):
        assert ideal_discharge_delay(10e-15, 0.0, 0.9, 0.45) == math.inf

    def test_rejects_bad_thresholds(self):
        with pytest.raises(CircuitError):
            ideal_discharge_delay(10e-15, 1e-6, 0.45, 0.9)
