"""Tests for the NAND match string."""

from __future__ import annotations

import math

import pytest

from repro.circuits.nandstring import NANDMatchString, NANDStringParams
from repro.errors import CircuitError


def _params(n_cells=16, **overrides) -> NANDStringParams:
    base = dict(
        n_cells=n_cells,
        r_on_per_cell=2e3,
        c_node_per_cell=0.15e-15,
        c_eval=1e-15,
        i_off_per_cell=1e-10,
    )
    base.update(overrides)
    return NANDStringParams(**base)


def _string(n_cells=16, **overrides) -> NANDMatchString:
    return NANDMatchString(_params(n_cells, **overrides), 0.9, 0.9)


class TestParams:
    def test_rejects_zero_cells(self):
        with pytest.raises(CircuitError):
            _params(n_cells=0)

    def test_rejects_bad_resistance(self):
        with pytest.raises(CircuitError):
            _params(r_on_per_cell=0.0)

    def test_rejects_bad_precharge(self):
        with pytest.raises(CircuitError):
            NANDMatchString(_params(), 0.0, 0.9)

    def test_rejects_supply_below_precharge(self):
        with pytest.raises(CircuitError):
            NANDMatchString(_params(), 0.9, 0.5)


class TestDelayScaling:
    def test_elmore_grows_superlinearly(self):
        """The ladder term makes 4x the cells cost well over 4x the delay."""
        tau16 = _string(16).elmore_delay_constant
        tau64 = _string(64).elmore_delay_constant
        assert tau64 > 6.0 * tau16

    def test_quadratic_limit_without_eval_cap(self):
        """With c_eval negligible, tau ~ N(N+1)/2 exactly."""
        tau_a = _string(10, c_eval=1e-21).elmore_delay_constant
        tau_b = _string(20, c_eval=1e-21).elmore_delay_constant
        assert tau_b / tau_a == pytest.approx((20 * 21) / (10 * 11), rel=1e-6)

    def test_time_to_is_log_swing(self):
        s = _string()
        t_half = s.time_to(0.45)
        assert t_half == pytest.approx(s.elmore_delay_constant * math.log(2.0), rel=1e-9)

    def test_time_to_rejects_bad_threshold(self):
        with pytest.raises(CircuitError):
            _string().time_to(1.0)


class TestEvaluate:
    def test_match_conducts_within_generous_window(self):
        s = _string()
        result = s.evaluate(0, 0.45, 10 * s.time_to(0.45))
        assert result.conducts
        assert result.v_end < 0.45

    def test_match_misses_short_window(self):
        s = _string()
        result = s.evaluate(0, 0.45, 0.1 * s.time_to(0.45))
        assert not result.conducts

    def test_broken_string_stays_high(self):
        s = _string()
        result = s.evaluate(1, 0.45, 2 * s.time_to(0.45))
        assert not result.conducts
        assert result.t_discharge == math.inf
        assert result.v_end > 0.85

    def test_broken_string_energy_tiny_vs_match(self):
        """The NAND selling point: misses cost almost nothing."""
        s = _string()
        window = 2 * s.time_to(0.45)
        e_match = s.evaluate(0, 0.45, window).energy
        e_miss = s.evaluate(1, 0.45, window).energy
        assert e_miss < 0.01 * e_match

    def test_more_mismatches_same_as_one(self):
        """Any break isolates the node; extra breaks change nothing."""
        s = _string()
        window = s.time_to(0.45)
        r1 = s.evaluate(1, 0.45, window)
        r5 = s.evaluate(5, 0.45, window)
        assert r1.v_end == pytest.approx(r5.v_end)
        assert r1.energy == pytest.approx(r5.energy)

    def test_catastrophic_leak_fails_safe_detection(self):
        s = _string(i_off_per_cell=1e-4)
        result = s.evaluate(1, 0.45, 1e-9)
        assert result.conducts  # phantom match: the failure mode exists

    def test_rejects_negative_mismatches(self):
        with pytest.raises(CircuitError):
            _string().evaluate(-1, 0.45, 1e-9)

    def test_rejects_bad_window(self):
        with pytest.raises(CircuitError):
            _string().evaluate(0, 0.45, 0.0)
