"""Tests for the precharge schemes -- where Design LV's energy story lives."""

from __future__ import annotations

import pytest

from repro.circuits.precharge import ClampedPrecharge, FullSwingPrecharge
from repro.errors import CircuitError

C_ML = 10e-15
VDD = 0.9


class TestFullSwing:
    def test_target_is_vdd(self):
        assert FullSwingPrecharge(VDD).target_voltage() == VDD

    def test_full_restore_energy_cv2(self):
        p = FullSwingPrecharge(VDD)
        assert p.restore_energy(C_ML, 0.0) == pytest.approx(C_ML * VDD * VDD)

    def test_droop_restore_linear(self):
        p = FullSwingPrecharge(VDD)
        assert p.restore_energy(C_ML, 0.8) == pytest.approx(C_ML * 0.1 * VDD, rel=1e-6)

    def test_no_restore_needed_at_target(self):
        p = FullSwingPrecharge(VDD)
        assert p.restore_energy(C_ML, VDD) == pytest.approx(0.0)
        assert p.restore_time(C_ML, VDD) == 0.0

    def test_restore_time_positive_and_monotone(self):
        p = FullSwingPrecharge(VDD)
        assert p.restore_time(C_ML, 0.0) > p.restore_time(C_ML, 0.5) > 0.0

    def test_rejects_v_from_outside_range(self):
        p = FullSwingPrecharge(VDD)
        with pytest.raises(CircuitError):
            p.restore_energy(C_ML, -0.1)
        with pytest.raises(CircuitError):
            p.restore_energy(C_ML, 1.0)

    def test_rejects_bad_settle_fraction(self):
        with pytest.raises(CircuitError):
            FullSwingPrecharge(VDD, settle_fraction=1.0)


class TestClamped:
    def test_target_below_vdd(self):
        p = ClampedPrecharge(vdd=VDD, v_target=0.5)
        assert p.target_voltage() == 0.5

    def test_energy_linear_in_swing(self):
        """The LV saving: E = C * V_ML * VDD rather than C * VDD^2."""
        p = ClampedPrecharge(vdd=VDD, v_target=0.5)
        assert p.restore_energy(C_ML, 0.0) == pytest.approx(C_ML * 0.5 * VDD)

    def test_half_swing_costs_half_of_full_swing(self):
        full = FullSwingPrecharge(VDD).restore_energy(C_ML, 0.0)
        half = ClampedPrecharge(vdd=VDD, v_target=VDD / 2).restore_energy(C_ML, 0.0)
        assert half == pytest.approx(full / 2.0)

    def test_no_energy_above_clamp(self):
        p = ClampedPrecharge(vdd=VDD, v_target=0.5)
        assert p.restore_energy(C_ML, 0.6) == 0.0

    def test_restore_time_positive(self):
        p = ClampedPrecharge(vdd=VDD, v_target=0.5)
        assert p.restore_time(C_ML, 0.0) > 0.0
        assert p.restore_time(C_ML, 0.6) == 0.0

    def test_rejects_target_above_vdd(self):
        with pytest.raises(CircuitError):
            ClampedPrecharge(vdd=VDD, v_target=1.0)

    def test_rejects_zero_target(self):
        with pytest.raises(CircuitError):
            ClampedPrecharge(vdd=VDD, v_target=0.0)

    def test_clamped_restore_slower_per_volt_than_full(self):
        """The follower weakens near its clamp point."""
        full = FullSwingPrecharge(VDD, r_device=6e3)
        clamp = ClampedPrecharge(vdd=VDD, v_target=VDD * 0.999, r_device=6e3)
        assert clamp.restore_time(C_ML, 0.0) > full.restore_time(C_ML, 0.0)
