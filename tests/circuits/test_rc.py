"""Tests for the RC transient primitives."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.rc import (
    RCLine,
    charge_energy,
    discharge_time,
    discharge_waveform,
    elmore_delay,
    rc_step_response,
    rc_time_to_reach,
)
from repro.errors import CircuitError


class TestStepResponse:
    def test_one_tau_point(self):
        v = rc_step_response(1e3, 1e-12, 0.0, 1.0, 1e-9)
        assert v == pytest.approx(1.0 - math.exp(-1.0), rel=1e-9)

    def test_t_zero_is_start(self):
        assert rc_step_response(1e3, 1e-12, 0.3, 1.0, 0.0) == pytest.approx(0.3)

    def test_long_time_reaches_end(self):
        assert rc_step_response(1e3, 1e-12, 0.0, 1.0, 1e-6) == pytest.approx(1.0)

    def test_discharge_direction(self):
        v = rc_step_response(1e3, 1e-12, 1.0, 0.0, 1e-9)
        assert v == pytest.approx(math.exp(-1.0), rel=1e-9)

    def test_rejects_bad_rc(self):
        with pytest.raises(CircuitError):
            rc_step_response(0.0, 1e-12, 0.0, 1.0, 1e-9)

    def test_rejects_negative_time(self):
        with pytest.raises(CircuitError):
            rc_step_response(1e3, 1e-12, 0.0, 1.0, -1e-9)


class TestTimeToReach:
    def test_inverse_of_step_response(self):
        r, c = 2e3, 3e-12
        t = rc_time_to_reach(r, c, 0.0, 1.0, 0.9)
        assert rc_step_response(r, c, 0.0, 1.0, t) == pytest.approx(0.9, rel=1e-9)

    def test_target_equal_start_is_zero_time(self):
        assert rc_time_to_reach(1e3, 1e-12, 0.2, 1.0, 0.2) == pytest.approx(0.0)

    def test_rejects_unreachable_target(self):
        with pytest.raises(CircuitError):
            rc_time_to_reach(1e3, 1e-12, 0.0, 1.0, 1.5)

    def test_rejects_degenerate_drive(self):
        with pytest.raises(CircuitError):
            rc_time_to_reach(1e3, 1e-12, 1.0, 1.0, 1.0)


class TestElmore:
    def test_distributed_vs_lumped_factors(self):
        assert elmore_delay(1e3, 1e-12) == pytest.approx(0.38e-9)
        assert elmore_delay(1e3, 1e-12, distributed=False) == pytest.approx(0.69e-9)

    def test_rejects_negative(self):
        with pytest.raises(CircuitError):
            elmore_delay(-1.0, 1e-12)


class TestRCLine:
    def test_delay_positive_and_monotone_in_load(self):
        small = RCLine(1e3, 500.0, 2e-15, 1e-15)
        large = RCLine(1e3, 500.0, 2e-15, 10e-15)
        assert 0.0 < small.delay_50pct() < large.delay_50pct()

    def test_total_capacitance(self):
        line = RCLine(1e3, 500.0, 2e-15, 1e-15)
        assert line.total_capacitance == pytest.approx(3e-15)

    def test_settle_time_exceeds_delay(self):
        line = RCLine(1e3, 500.0, 2e-15, 1e-15)
        assert line.settle_time() > line.delay_50pct()

    def test_rejects_zero_driver(self):
        with pytest.raises(CircuitError):
            RCLine(0.0, 500.0, 2e-15, 1e-15)


class TestDischargeTime:
    def test_constant_current_analytic(self):
        """Constant-current discharge: t = C * dV / I exactly."""
        c, i = 10e-15, 5e-6
        t = discharge_time(c, lambda v: i, 0.9, 0.45)
        assert t == pytest.approx(c * 0.45 / i, rel=1e-6)

    def test_resistor_discharge_matches_log(self):
        """Ohmic discharge: t = RC ln(v0/v1)."""
        r, c = 50e3, 10e-15
        t = discharge_time(c, lambda v: v / r, 0.9, 0.45)
        assert t == pytest.approx(r * c * math.log(2.0), rel=1e-3)

    def test_zero_current_never_reaches(self):
        t = discharge_time(1e-15, lambda v: 0.0, 0.9, 0.45)
        assert t == math.inf

    def test_rejects_inverted_bounds(self):
        with pytest.raises(CircuitError):
            discharge_time(1e-15, lambda v: 1e-6, 0.45, 0.9)

    def test_rejects_bad_capacitance(self):
        with pytest.raises(CircuitError):
            discharge_time(0.0, lambda v: 1e-6, 0.9, 0.45)

    @given(
        c=st.floats(min_value=1e-16, max_value=1e-13),
        i=st.floats(min_value=1e-7, max_value=1e-4),
    )
    @settings(max_examples=30, deadline=None)
    def test_scales_linearly_with_c_over_i(self, c, i):
        t = discharge_time(c, lambda v: i, 0.9, 0.45)
        assert t == pytest.approx(c * 0.45 / i, rel=1e-6)


class TestDischargeWaveform:
    def test_matches_exponential_for_ohmic_load(self):
        r, c = 50e3, 10e-15
        tau = r * c
        t = np.linspace(0.0, 3 * tau, 200)
        v = discharge_waveform(c, lambda vv: vv / r, 0.9, t)
        expected = 0.9 * np.exp(-t / tau)
        assert np.allclose(v, expected, rtol=1e-3)

    def test_monotone_nonincreasing(self):
        t = np.linspace(0.0, 1e-9, 100)
        v = discharge_waveform(5e-15, lambda vv: 1e-5, 0.9, t)
        assert np.all(np.diff(v) <= 1e-12)

    def test_clamps_at_floor(self):
        t = np.linspace(0.0, 1e-6, 50)
        v = discharge_waveform(1e-16, lambda vv: 1e-4, 0.9, t)
        assert v[-1] >= 0.0

    def test_rejects_bad_grid(self):
        with pytest.raises(CircuitError):
            discharge_waveform(1e-15, lambda vv: 1e-6, 0.9, np.array([1e-9, 0.0]))

    def test_crossing_time_consistent_with_discharge_time(self):
        """The two solvers agree on when the waveform crosses a threshold."""
        c = 8e-15

        def current(v: float) -> float:
            return 2e-6 * max(v, 0.0) / 0.9 + 1e-6

        t_cross = discharge_time(c, current, 0.9, 0.45)
        t = np.linspace(0.0, 2 * t_cross, 400)
        v = discharge_waveform(c, current, 0.9, t)
        idx = int(np.argmax(v <= 0.45))
        assert t[idx] == pytest.approx(t_cross, rel=0.02)


class TestChargeEnergy:
    def test_full_swing(self):
        assert charge_energy(1e-15, 0.9, 0.9) == pytest.approx(0.81e-15)

    def test_partial_swing_linear(self):
        assert charge_energy(1e-15, 0.45, 0.9) == pytest.approx(0.405e-15)

    def test_zero_cases(self):
        assert charge_energy(0.0, 0.9, 0.9) == 0.0
        assert charge_energy(1e-15, 0.0, 0.9) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(CircuitError):
            charge_energy(-1e-15, 0.9, 0.9)
