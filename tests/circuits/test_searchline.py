"""Tests for the search-line model."""

from __future__ import annotations

import pytest

from repro.circuits.searchline import SearchLine, count_toggles, search_energy
from repro.circuits.wire import M4_WIRE
from repro.errors import CircuitError
from repro.tcam.trit import Trit, drive_vector, word_from_string


def _line(rows: int = 64) -> SearchLine:
    return SearchLine(
        n_rows=rows,
        c_gate_per_cell=0.05e-15,
        cell_pitch=0.3e-6,
        wire=M4_WIRE,
    )


class TestGeometry:
    def test_length(self):
        assert _line(64).length == pytest.approx(64 * 0.3e-6)

    def test_capacitance_scales_with_rows(self):
        c64 = _line(64).capacitance_single
        c128 = _line(128).capacitance_single
        assert c128 > 1.8 * c64

    def test_pair_is_double(self):
        line = _line()
        assert line.capacitance_pair == pytest.approx(2 * line.capacitance_single)

    def test_rejects_zero_rows(self):
        with pytest.raises(CircuitError):
            _line(0)

    def test_rejects_bad_pitch(self):
        with pytest.raises(CircuitError):
            SearchLine(n_rows=4, c_gate_per_cell=1e-16, cell_pitch=0.0, wire=M4_WIRE)


class TestEnergy:
    def test_toggle_energy_cv2(self):
        line = _line()
        assert line.toggle_energy(0.9) == pytest.approx(
            line.capacitance_single * 0.81
        )

    def test_toggle_energy_rejects_bad_vdd(self):
        with pytest.raises(CircuitError):
            _line().toggle_energy(0.0)

    def test_search_energy_counts(self):
        line = _line()
        result = search_energy(line, 0.9, toggled_lines=10, gated_columns=3)
        assert result.energy == pytest.approx(10 * line.toggle_energy(0.9))
        assert result.n_gated == 3

    def test_search_energy_rejects_negative(self):
        with pytest.raises(CircuitError):
            search_energy(_line(), 0.9, toggled_lines=-1)


class TestToggleCounting:
    def test_identical_keys_no_toggles(self):
        d = drive_vector(word_from_string("0101"))
        assert count_toggles(d, d) == 0

    def test_complement_key_toggles_both_lines_per_column(self):
        d1 = drive_vector(word_from_string("0000"))
        d2 = drive_vector(word_from_string("1111"))
        assert count_toggles(d1, d2) == 8

    def test_x_column_releases_one_line(self):
        d1 = drive_vector(word_from_string("0"))
        d2 = drive_vector(word_from_string("X"))
        assert count_toggles(d1, d2) == 1

    def test_from_idle_all_low(self):
        idle = (0,) * 4
        d = drive_vector(word_from_string("01X1"))
        # 0 -> SL high (1 toggle), 1 -> SLB high (1), X -> none, 1 -> (1)
        assert count_toggles(idle, d) == 3

    def test_rejects_length_mismatch(self):
        with pytest.raises(CircuitError):
            count_toggles((0, 0), (0,))

    def test_delay_positive(self):
        assert _line().settle_delay(2e3) > 0.0

    def test_delay_rejects_bad_driver(self):
        with pytest.raises(CircuitError):
            _line().settle_delay(0.0)


class TestDriveConvention:
    def test_search_zero_raises_sl(self):
        from repro.tcam.trit import sl_drive

        assert sl_drive(Trit.ZERO) == (1, 0)
        assert sl_drive(Trit.ONE) == (0, 1)
        assert sl_drive(Trit.X) == (0, 0)
