"""Tests for the two sense-amplifier models."""

from __future__ import annotations

import pytest

from repro.circuits.senseamp import CurrentRaceSenseAmp, VoltageSenseAmp
from repro.errors import CircuitError


class TestVoltageSenseAmp:
    def test_above_reference_is_match(self):
        sa = VoltageSenseAmp(v_ref=0.45)
        assert sa.strobe(0.8).is_match

    def test_below_reference_is_miss(self):
        sa = VoltageSenseAmp(v_ref=0.45)
        assert not sa.strobe(0.1).is_match

    def test_offset_shifts_threshold(self):
        sa = VoltageSenseAmp(v_ref=0.45, offset=0.10)
        assert not sa.strobe(0.50).is_match  # effective threshold 0.55
        assert sa.strobe(0.60).is_match

    def test_margin_sign_and_magnitude(self):
        sa = VoltageSenseAmp(v_ref=0.45)
        d = sa.strobe(0.65)
        assert d.margin == pytest.approx(0.20)

    def test_energy_constant_per_strobe(self):
        sa = VoltageSenseAmp(v_ref=0.45)
        assert sa.strobe(0.8).energy == pytest.approx(sa.c_internal * sa.vdd**2)

    def test_small_overdrive_slower_regeneration(self):
        sa = VoltageSenseAmp(v_ref=0.45)
        assert sa.strobe(0.46).delay > sa.strobe(0.9).delay

    def test_input_capacitance_exposed(self):
        assert VoltageSenseAmp(v_ref=0.45).input_capacitance > 0.0

    def test_rejects_bad_reference(self):
        with pytest.raises(CircuitError):
            VoltageSenseAmp(v_ref=0.0)


class TestCurrentRaceSenseAmp:
    def test_clean_match_trips(self):
        sa = CurrentRaceSenseAmp()
        d = sa.evaluate(c_ml=10e-15, i_pulldown_total=0.0)
        assert d.is_match

    def test_single_strong_miss_never_trips(self):
        sa = CurrentRaceSenseAmp(i_race=2e-6)
        d = sa.evaluate(c_ml=10e-15, i_pulldown_total=50e-6)
        assert not d.is_match

    def test_miss_energy_bounded_by_window_burn(self):
        sa = CurrentRaceSenseAmp(i_race=2e-6)
        d = sa.evaluate(c_ml=10e-15, i_pulldown_total=50e-6)
        burn = sa.i_race * sa.vdd * sa.t_window
        assert d.energy <= burn + sa.c_internal * sa.vdd**2 + 1e-21

    def test_match_slower_with_bigger_line(self):
        sa = CurrentRaceSenseAmp()
        d_small = sa.evaluate(c_ml=5e-15, i_pulldown_total=0.0)
        d_big = sa.evaluate(c_ml=20e-15, i_pulldown_total=0.0)
        assert d_big.delay > d_small.delay

    def test_leakage_close_to_race_current_fails_window(self):
        """When leakage nearly cancels the source, the line cannot trip in
        time -- the failure mode limiting word width for Design CR."""
        sa = CurrentRaceSenseAmp(i_race=2e-6, t_window=400e-12)
        d = sa.evaluate(c_ml=10e-15, i_pulldown_total=1.999e-6)
        assert not d.is_match

    def test_negative_trip_offset_forces_match(self):
        sa = CurrentRaceSenseAmp(offset=-1.0)
        assert sa.evaluate(10e-15, 1e-3).is_match

    def test_rejects_bad_race_current(self):
        with pytest.raises(CircuitError):
            CurrentRaceSenseAmp(i_race=0.0)

    def test_rejects_bad_trip_point(self):
        with pytest.raises(CircuitError):
            CurrentRaceSenseAmp(v_trip=1.5, vdd=0.9)

    def test_rejects_bad_cml(self):
        with pytest.raises(CircuitError):
            CurrentRaceSenseAmp().evaluate(0.0, 1e-6)

    def test_rejects_negative_pulldown(self):
        with pytest.raises(CircuitError):
            CurrentRaceSenseAmp().evaluate(1e-15, -1e-6)
