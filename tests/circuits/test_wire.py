"""Tests for wire parasitics."""

from __future__ import annotations

import pytest

from repro.circuits.wire import M2_WIRE, M4_WIRE, WireModel
from repro.errors import CircuitError
from repro.units import FEMTO, MICRO


class TestWireModel:
    def test_m2_per_micron_values(self):
        assert M2_WIRE.capacitance(MICRO) == pytest.approx(0.20 * FEMTO)
        assert M2_WIRE.resistance(MICRO) == pytest.approx(3.0)

    def test_linear_in_length(self):
        assert M4_WIRE.capacitance(10 * MICRO) == pytest.approx(
            10 * M4_WIRE.capacitance(MICRO)
        )

    def test_zero_length_zero_parasitics(self):
        assert M2_WIRE.capacitance(0.0) == 0.0
        assert M2_WIRE.resistance(0.0) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(CircuitError):
            M2_WIRE.capacitance(-1.0)

    def test_rejects_non_physical_constants(self):
        with pytest.raises(CircuitError):
            WireModel(name="bad", r_per_m=1.0, c_per_m=0.0)

    def test_m4_less_resistive_than_m2(self):
        assert M4_WIRE.r_per_m < M2_WIRE.r_per_m
