"""Tests for the sharded multi-chip cluster fabric."""
