"""Scaling-campaign record structure and the fabric service model."""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    FabricBackend,
    RuleTable,
    TCAMFabric,
    run_cluster_campaign,
    synthetic_rule_table,
)
from repro.cluster.campaign import FabricServiceModel
from repro.errors import ClusterError
from repro.tcam.outcome import SCHEMA_VERSION
from repro.tcam.trit import random_word


class TestSyntheticRuleTable:
    def test_shape_and_priority_order(self):
        table = synthetic_rule_table(20, 16, seed=1)
        assert len(table) == 20
        assert table.width == 16
        # LPM convention: earlier rules are at least as specific.
        spec = [sum(1 for t in w if t != 2) for w in table.rules]
        assert spec == sorted(spec, reverse=True)

    def test_deterministic(self):
        a = synthetic_rule_table(8, 12, seed=5)
        b = synthetic_rule_table(8, 12, seed=5)
        assert all(list(x) == list(y) for x, y in zip(a.rules, b.rules))

    def test_validation(self):
        with pytest.raises(ClusterError):
            synthetic_rule_table(0, 16)
        with pytest.raises(ClusterError, match="min_prefix"):
            synthetic_rule_table(4, 16, min_prefix=0)


class TestFabricServiceModel:
    def _fabric(self, rng, n_chips, topology="p2p"):
        table = RuleTable(tuple(random_word(12, rng) for _ in range(8)))
        return TCAMFabric(
            table, n_chips=n_chips, policy="range", topology=topology
        )

    def test_disjoint_shards_overlap(self, rng):
        """Queries on different shard ports must not serialize."""
        fabric = self._fabric(rng, 4)
        keys = [random_word(12, rng, x_fraction=0.0) for _ in range(16)]
        out = fabric.search_batch(keys)
        model = FabricServiceModel()
        t = model.batch_service_time(out)
        serialized = model.t_overhead + sum(o.cycle_time for o in out)
        per_shard: dict[int, float] = {}
        for o in out:
            for s, c in o.shard_cycles:
                per_shard[s] = per_shard.get(s, 0.0) + c
        assert t == pytest.approx(model.t_overhead + max(per_shard.values()))
        if len(per_shard) > 1:
            assert t < serialized

    def test_bus_medium_serializes(self, rng):
        fabric = self._fabric(rng, 4, topology="bus")
        keys = [random_word(12, rng, x_fraction=0.0) for _ in range(16)]
        out = fabric.search_batch(keys)
        medium = sum(o.link_occupancy for o in out)
        assert medium > 0.0
        t = FabricServiceModel().batch_service_time(out)
        assert t >= FabricServiceModel().t_overhead + medium

    def test_empty_batch_costs_overhead(self):
        model = FabricServiceModel()
        assert model.batch_service_time([]) == model.t_overhead


class TestFabricBackend:
    def test_protocol(self, rng):
        table = RuleTable(tuple(random_word(12, rng) for _ in range(6)))
        backend = FabricBackend(TCAMFabric(table, n_chips=2))
        assert backend.cols == 12
        out = backend.search_batch([random_word(12, rng)], banks=0)
        assert len(out) == 1


class TestCampaignRecord:
    @pytest.fixture(scope="class")
    def record(self):
        return run_cluster_campaign(
            n_rules=24,
            cols=16,
            chip_counts=(1, 2),
            policies=("hash", "range"),
            n_requests=60,
            churn_updates=16,
            max_batch=16,
            seed=3,
        )

    def test_schema_and_shape(self, record):
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["campaign"] == "cluster-scaling"
        assert len(record["points"]) == 4
        assert record["config"]["chip_counts"] == [1, 2]

    def test_every_point_conserved(self, record):
        for p in record["points"]:
            assert p["conserved"]
            assert p["offered"] == p["completed"] + p["rejected"]
            assert p["churn_integrity"]

    def test_frontier_fields_sane(self, record):
        for p in record["points"]:
            assert p["throughput"] > 0.0
            assert p["energy_per_query"] > 0.0
            assert 0.0 <= p["link_fraction"] <= 1.0
            assert p["probes_per_query"] >= 1.0
            assert 0.0 <= p["availability"] <= 1.0
            assert p["latency_p50"] <= p["latency_p95"] <= p["latency_p99"]

    def test_probe_counts_match_policy(self, record):
        for p in record["points"]:
            if p["policy"] == "hash":
                assert p["probes_per_query"] == pytest.approx(p["n_chips"])
            elif p["policy"] == "range":
                assert p["probes_per_query"] <= p["n_chips"]

    def test_record_is_json_serializable(self, record):
        parsed = json.loads(json.dumps(record))
        assert parsed["schema_version"] == SCHEMA_VERSION

    def test_validation(self):
        with pytest.raises(ClusterError, match="topology"):
            run_cluster_campaign(topology="mesh", chip_counts=(1,))
        with pytest.raises(ClusterError, match="unknown policy"):
            run_cluster_campaign(policies=("lpm",), chip_counts=(1,))
