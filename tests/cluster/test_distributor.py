"""Placement/routing correctness of the distributor policies."""

from __future__ import annotations

import pytest

from repro.cluster import (
    DISTRIBUTOR_POLICIES,
    HashDistributor,
    RangeDistributor,
    ReplicatedHotDistributor,
    RuleTable,
    get_distributor,
    rule_fingerprint,
    ternary_matches,
)
from repro.errors import ClusterError
from repro.tcam.trit import TernaryWord, Trit, prefix_word, random_word


def _table(rng, n=24, cols=16, x_fraction=0.3):
    return RuleTable(
        tuple(random_word(cols, rng, x_fraction=x_fraction) for _ in range(n))
    )


def _prefix_table(rng, n=24, cols=16, min_prefix=2):
    words = []
    for _ in range(n):
        plen = int(rng.integers(min_prefix, cols + 1))
        words.append(prefix_word(int(rng.integers(1 << 16)), plen, cols))
    return RuleTable(tuple(words))


class TestRuleTable:
    def test_empty_rejected(self):
        with pytest.raises(ClusterError, match="at least one rule"):
            RuleTable(())

    def test_mixed_width_rejected(self, rng):
        with pytest.raises(ClusterError, match="width"):
            RuleTable((random_word(8, rng), random_word(9, rng)))

    def test_indexing_and_width(self, rng):
        table = _table(rng, n=5, cols=12)
        assert len(table) == 5
        assert table.width == 12
        assert table[3] is table.rules[3]


class TestFingerprint:
    def test_deterministic_and_content_addressed(self, rng):
        w = random_word(16, rng)
        clone = TernaryWord(list(w))
        assert rule_fingerprint(w) == rule_fingerprint(clone)

    def test_distinct_words_usually_differ(self, rng):
        words = [random_word(24, rng) for _ in range(64)]
        assert len({rule_fingerprint(w) for w in words}) > 60


class TestHashPolicy:
    def test_every_rule_exactly_one_shard(self, rng):
        table = _table(rng)
        placement = HashDistributor().place(table, 4)
        assert all(len(r) == 1 for r in placement.replicas)
        assert sorted(
            g for shard in placement.shard_rules for g in shard
        ) == list(range(len(table)))
        assert placement.replication_factor() == 1.0

    def test_probe_is_broadcast(self, rng):
        table = _table(rng)
        placement = HashDistributor().place(table, 4)
        key = random_word(16, rng)
        assert HashDistributor().probe_shards(key, placement) == (0, 1, 2, 3)

    def test_placement_is_stable(self, rng):
        table = _table(rng)
        a = HashDistributor().place(table, 8)
        b = HashDistributor().place(table, 8)
        assert a.shard_rules == b.shard_rules

    def test_shard_rules_ascending(self, rng):
        placement = HashDistributor().place(_table(rng, n=48), 4)
        for shard in placement.shard_rules:
            assert list(shard) == sorted(shard)


class TestRangePolicy:
    def test_default_route_bits_addresses_all_shards(self, rng):
        table = _table(rng)
        placement = RangeDistributor().place(table, 8)
        assert placement.route_bits == 3

    def test_replication_covers_every_match(self, rng):
        """Fuzz the load-bearing invariant: any rule matching a key is
        stored on a shard that key probes."""
        dist = RangeDistributor()
        table = _prefix_table(rng, n=40, cols=16)
        for n_shards in (1, 3, 4, 7):
            placement = dist.place(table, n_shards)
            for _ in range(60):
                key = random_word(16, rng, x_fraction=0.1)
                probed = set(dist.probe_shards(key, placement))
                for gid, rule in enumerate(table.rules):
                    if ternary_matches(rule, key):
                        assert probed & set(placement.replicas[gid]), (
                            f"rule {gid} matches but lives on an unprobed shard"
                        )

    def test_fully_specified_key_probes_one_shard(self, rng):
        dist = RangeDistributor()
        placement = dist.place(_prefix_table(rng), 8)
        key = random_word(16, rng, x_fraction=0.0)
        assert len(dist.probe_shards(key, placement)) == 1

    def test_all_x_rule_replicated_everywhere(self, rng):
        dist = RangeDistributor()
        table = RuleTable(
            (TernaryWord([Trit.X] * 16),) + _table(rng, n=3).rules
        )
        placement = dist.place(table, 4)
        assert placement.replicas[0] == (0, 1, 2, 3)

    def test_route_bits_out_of_range_rejected(self, rng):
        with pytest.raises(ClusterError, match="route_bits"):
            RangeDistributor(route_bits=20).place(_table(rng, cols=16), 2)


class TestReplicatedPolicy:
    def test_hot_prefix_everywhere_tail_once(self, rng):
        table = _table(rng, n=32)
        dist = ReplicatedHotDistributor(hot_count=4)
        placement = dist.place(table, 4)
        assert placement.hot_count == 4
        for gid, replicas in enumerate(placement.replicas):
            if gid < 4:
                assert replicas == (0, 1, 2, 3)
            else:
                assert len(replicas) == 1

    def test_single_probe_then_fallback_semantics(self, rng):
        table = _table(rng, n=32)
        dist = ReplicatedHotDistributor(hot_count=4)
        placement = dist.place(table, 4)
        key = random_word(16, rng)
        assert len(dist.probe_shards(key, placement)) == 1
        # A hot winner is final; a tail winner or a miss needs broadcast.
        assert not dist.needs_fallback(2, placement)
        assert dist.needs_fallback(7, placement)
        assert dist.needs_fallback(None, placement)

    def test_no_fallback_on_single_shard(self, rng):
        dist = ReplicatedHotDistributor(hot_count=2)
        placement = dist.place(_table(rng), 1)
        assert not dist.needs_fallback(None, placement)

    def test_hot_fraction_validation(self):
        with pytest.raises(ClusterError, match="hot_fraction"):
            ReplicatedHotDistributor(hot_fraction=1.5)
        with pytest.raises(ClusterError, match="hot_count"):
            ReplicatedHotDistributor(hot_count=-1)

    def test_hot_count_capped_at_table(self, rng):
        placement = ReplicatedHotDistributor(hot_count=999).place(
            _table(rng, n=6), 3
        )
        assert placement.hot_count == 6
        assert placement.replication_factor() == 3.0


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in DISTRIBUTOR_POLICIES:
            assert get_distributor(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError, match="unknown distributor policy"):
            get_distributor("round-robin")

    def test_kwargs_forwarded(self):
        dist = get_distributor("range", route_bits=5)
        assert dist.route_bits == 5

    def test_invalid_shard_count_rejected(self, rng):
        with pytest.raises(ClusterError, match="n_shards"):
            HashDistributor().place(_table(rng), 0)
