"""Sharding equivalence: the fabric must reproduce the unsharded chip.

The contract of the whole subsystem: for every distributor policy, a
cluster's merged answer is bit-identical to one reference
:class:`~repro.tcam.chip.TCAMChip` holding the same table in priority
order -- same winner for every key, same match set for the broadcast
policies, and for a 1-chip cluster the same energy ledger once the
link/distribution components are stripped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    DISTRIBUTOR_POLICIES,
    RuleTable,
    TCAMFabric,
    build_reference_chip,
    logical_winner,
)
from repro.energy.accounting import EnergyLedger
from repro.errors import CapacityError, ClusterError
from repro.tcam.trit import prefix_word, random_word

COLS = 16
N_RULES = 24


@pytest.fixture
def table(rng):
    words = []
    for _ in range(N_RULES):
        plen = int(rng.integers(3, COLS + 1))
        words.append(prefix_word(int(rng.integers(1 << 16)), plen, COLS))
    # Most-specific first: longest-prefix-match priority order.
    words.sort(key=lambda w: -sum(1 for t in w if t != 2))
    return RuleTable(tuple(words))


@pytest.fixture
def keys(rng):
    return [random_word(COLS, rng, x_fraction=0.05) for _ in range(20)]


def _fabric(table, n_chips, policy, **kw):
    kw.setdefault("spare_rows", 0)
    return TCAMFabric(table, n_chips=n_chips, policy=policy, **kw)


@pytest.mark.parametrize("policy", DISTRIBUTOR_POLICIES)
@pytest.mark.parametrize("n_chips", [1, 4])
@pytest.mark.parametrize("use_kernel", [False, True])
class TestWinnerEquivalence:
    def test_winner_matches_reference(
        self, table, keys, policy, n_chips, use_kernel
    ):
        ref = build_reference_chip(table, use_kernel=use_kernel)
        ref_out = ref.search_batch(keys, banks=0)
        fabric = _fabric(table, n_chips, policy, use_kernel=use_kernel)
        out = fabric.search_batch(keys)
        for i, (r, f) in enumerate(zip(ref_out, out)):
            assert f.rule == r.first_match, f"key {i} winner diverged"


@pytest.mark.parametrize("policy", ["hash", "range"])
@pytest.mark.parametrize("n_chips", [1, 4])
class TestMatchSetEquivalence:
    def test_broadcast_policies_see_every_match(
        self, table, keys, policy, n_chips
    ):
        ref = build_reference_chip(table)
        ref_out = ref.search_batch(keys, banks=0)
        out = _fabric(table, n_chips, policy).search_batch(keys)
        for r, f in zip(ref_out, out):
            expected = tuple(int(g) for g in np.flatnonzero(r.match_mask))
            assert f.matched_rules == expected


class TestReplicatedPruning:
    def test_matched_subset_with_global_winner(self, table, keys):
        ref = build_reference_chip(table)
        ref_out = ref.search_batch(keys, banks=0)
        out = _fabric(table, 4, "replicated").search_batch(keys)
        for r, f in zip(ref_out, out):
            full = set(int(g) for g in np.flatnonzero(r.match_mask))
            assert set(f.matched_rules) <= full
            assert f.rule == r.first_match

    def test_hot_hit_resolves_in_one_probe(self, rng):
        # A table whose top rule matches everything: the home-shard
        # probe finds a hot winner and must not broadcast.
        words = (prefix_word(0, 0, COLS),) + tuple(
            random_word(COLS, rng) for _ in range(7)
        )
        fabric = _fabric(RuleTable(words), 4, "replicated")
        out = fabric.search(random_word(COLS, rng))
        assert out.rule == 0
        assert not out.fallback
        assert len(out.shards_probed) == 1


@pytest.mark.parametrize("policy", DISTRIBUTOR_POLICIES)
class TestSingleChipLedgerEquality:
    def test_ledger_equals_reference_modulo_fabric_components(
        self, table, keys, policy
    ):
        ref = build_reference_chip(table)
        ref_out = ref.search_batch(keys, banks=0)
        out = _fabric(table, 1, policy).search_batch(keys)
        for r, f in zip(ref_out, out):
            d = f.energy.as_dict()
            d.pop("link", None)
            d.pop("distribution", None)
            assert d == r.energy.as_dict()


class TestWorkerInvariance:
    def test_parallel_fanout_bit_identical(self, table, keys):
        serial = _fabric(table, 4, "range").search_batch(keys, workers=0)
        fanned = _fabric(table, 4, "range").search_batch(keys, workers=2)
        for s, p in zip(serial, fanned):
            assert p.rule == s.rule
            assert p.matched_rules == s.matched_rules
            assert p.energy.as_dict() == s.energy.as_dict()
            assert p.latency == s.latency
            assert p.cycle == s.cycle


class TestSpanSumInvariant:
    def test_span_tree_energy_matches_outcomes(self, table, keys):
        fabric = _fabric(table, 4, "hash")
        with obs.observe() as sess:
            out = fabric.search_batch(keys)
        root = sess.spans[-1]
        assert root.name == "cluster.search_batch"
        merged = EnergyLedger.sum(o.energy for o in out)
        tree = root.total_energy()
        assert set(tree.as_dict()) == set(merged.as_dict())
        for component, joules in merged:
            assert tree.get(component) == pytest.approx(joules, rel=1e-12)
        assert tree.total == pytest.approx(merged.total, rel=1e-12)

    def test_no_session_is_a_noop(self, table, keys):
        assert not obs.is_enabled()
        baseline = _fabric(table, 2, "hash").search_batch(keys)
        with obs.observe():
            traced = _fabric(table, 2, "hash").search_batch(keys)
        for b, t in zip(baseline, traced):
            assert t.energy.as_dict() == b.energy.as_dict()


class TestLogicalOracleAgreement:
    @pytest.mark.parametrize("policy", DISTRIBUTOR_POLICIES)
    def test_fabric_agrees_with_oracle(self, table, keys, policy):
        fabric = _fabric(table, 3, policy)
        rules = dict(enumerate(table.rules))
        for key in keys:
            assert fabric.search(key).rule == logical_winner(rules, key)


class TestValidation:
    def test_key_width_mismatch(self, table, rng):
        fabric = _fabric(table, 2, "hash")
        with pytest.raises(ClusterError, match="width"):
            fabric.search(random_word(COLS + 1, rng))

    def test_zero_chips_rejected(self, table):
        with pytest.raises(ClusterError, match="n_chips"):
            TCAMFabric(table, n_chips=0)

    def test_undersized_banks_rejected(self, table):
        with pytest.raises(CapacityError, match="bank_rows"):
            TCAMFabric(table, n_chips=1, bank_rows=4)

    def test_empty_batch(self, table):
        assert _fabric(table, 2, "hash").search_batch([]) == []

    def test_counters_track_probes(self, table, keys):
        fabric = _fabric(table, 4, "hash")
        fabric.search_batch(keys)
        counters = fabric.counters()
        assert counters["queries_offered"] == len(keys)
        assert counters["probes_issued"] == 4 * len(keys)
