"""Link-model pricing and ledger booking for the fabric interconnect."""

from __future__ import annotations

import pytest

from repro.cluster import Interconnect, LinkModel
from repro.cluster.interconnect import DISTRIBUTION_COMPONENT, LINK_COMPONENT
from repro.energy.accounting import EnergyLedger
from repro.errors import ClusterError


def _ic(topology="p2p", **kw):
    return Interconnect(topology, key_bits=64, result_bits=64, **kw)


class TestValidation:
    def test_unknown_topology(self):
        with pytest.raises(ClusterError, match="topology"):
            _ic("torus")

    def test_bad_bit_widths(self):
        with pytest.raises(ClusterError, match="key_bits"):
            Interconnect("p2p", key_bits=0)

    def test_link_model_validation(self):
        with pytest.raises(ClusterError, match="non-negative"):
            LinkModel(e_per_bit=-1.0)
        with pytest.raises(ClusterError, match="t_hop"):
            LinkModel(t_hop=-1e-9)
        with pytest.raises(ClusterError, match="bit_rate"):
            LinkModel(bit_rate=0.0)

    def test_negative_probe_count(self):
        with pytest.raises(ClusterError, match="n_probes"):
            _ic().query_cost(-1)


class TestQueryCost:
    def test_energy_linear_in_probes(self):
        ic = _ic()
        c1, c4 = ic.query_cost(1), ic.query_cost(4)
        assert c4.energy == pytest.approx(4 * c1.energy)
        assert c4.routing_energy == pytest.approx(4 * c1.routing_energy)

    def test_energy_topology_independent(self):
        assert _ic("p2p").query_cost(4).energy == _ic("bus").query_cost(4).energy

    def test_p2p_latency_flat_bus_serializes(self):
        p2p, bus = _ic("p2p"), _ic("bus")
        assert p2p.query_cost(4).latency == p2p.query_cost(1).latency
        assert bus.query_cost(4).latency == pytest.approx(
            4 * bus.query_cost(1).latency
        )
        assert bus.query_cost(4).occupancy == pytest.approx(
            4 * p2p.query_cost(1).occupancy
        )

    def test_zero_probes_costs_only_routing(self):
        cost = _ic().query_cost(0)
        assert cost.energy == 0.0
        assert cost.latency == 0.0
        assert cost.routing_energy > 0.0

    def test_transfer_time_components(self):
        link = LinkModel(t_hop=5e-9, bit_rate=10e9)
        ic = Interconnect("p2p", link, key_bits=50, result_bits=50)
        assert ic.transfer_time() == pytest.approx(2 * 5e-9 + 100 / 10e9)


class TestUpdateCost:
    def test_updates_always_serialize(self):
        for topo in ("p2p", "bus"):
            ic = _ic(topo)
            c = ic.update_cost(3)
            assert c.latency == pytest.approx(3 * ic.transfer_time())
            assert c.occupancy == c.latency

    def test_negative_replicas_rejected(self):
        with pytest.raises(ClusterError, match="n_replicas"):
            _ic().update_cost(-2)


class TestBooking:
    def test_components_land_in_ledger(self):
        ic = _ic()
        ledger = EnergyLedger()
        cost = ic.query_cost(3)
        ic.book(ledger, cost)
        assert ledger.get(LINK_COMPONENT) == cost.energy
        assert ledger.get(DISTRIBUTION_COMPONENT) == cost.routing_energy
        assert ledger.total == pytest.approx(cost.energy + cost.routing_energy)

    def test_describe_round_trips_parameters(self):
        link = LinkModel(e_per_bit=1e-13)
        d = Interconnect("bus", link, key_bits=32).describe()
        assert d["topology"] == "bus"
        assert d["e_per_bit"] == 1e-13
        assert d["key_bits"] == 32
