"""Live churn, estimator-priced writes, and the wear/repair loop."""

from __future__ import annotations

import pytest

from repro.cluster import (
    RuleTable,
    RuleUpdate,
    TCAMFabric,
    UpdateEngine,
    age_and_repair,
    bulk_signature_push,
    logical_winner,
    synthesize_churn,
)
from repro.errors import ClusterError
from repro.tcam.trit import prefix_word, random_word

COLS = 16


def _table(rng, n=12):
    words = []
    for _ in range(n):
        plen = int(rng.integers(3, COLS + 1))
        words.append(prefix_word(int(rng.integers(1 << 16)), plen, COLS))
    return RuleTable(tuple(words))


def _fabric(table, n_chips=2, headroom=6, **kw):
    kw.setdefault("spare_rows", 0)
    load = max(
        len(s)
        for s in TCAMFabric(table, n_chips=n_chips, **kw).placement.shard_rules
    )
    return TCAMFabric(
        table, n_chips=n_chips, bank_rows=load + headroom + kw["spare_rows"], **kw
    )


class TestRuleUpdate:
    def test_op_validation(self, rng):
        with pytest.raises(ClusterError, match="add/withdraw"):
            RuleUpdate("replace")
        with pytest.raises(ClusterError, match="rule word"):
            RuleUpdate("add")
        with pytest.raises(ClusterError, match="rule id"):
            RuleUpdate("withdraw")

    def test_bulk_push_width_check(self, rng):
        words = [random_word(COLS, rng) for _ in range(3)]
        assert len(bulk_signature_push(words, width=COLS)) == 3
        with pytest.raises(ClusterError, match="signature width"):
            bulk_signature_push(words, width=COLS + 1)


class TestSynthesizeChurn:
    def test_deterministic(self):
        a = synthesize_churn(8, COLS, 40, seed=7)
        b = synthesize_churn(8, COLS, 40, seed=7)
        assert [(u.op, u.rule_id) for u in a] == [(u.op, u.rule_id) for u in b]

    def test_withdraw_targets_are_live(self):
        updates = synthesize_churn(4, COLS, 60, seed=3)
        live = set(range(4))
        next_id = 4
        for u in updates:
            if u.op == "add":
                live.add(next_id)
                next_id += 1
            else:
                assert u.rule_id in live
                live.discard(u.rule_id)

    def test_parameter_validation(self):
        with pytest.raises(ClusterError, match="non-negative"):
            synthesize_churn(-1, COLS, 5)
        with pytest.raises(ClusterError, match="add_fraction"):
            synthesize_churn(4, COLS, 5, add_fraction=2.0)
        with pytest.raises(ClusterError, match="min_prefix"):
            synthesize_churn(4, COLS, 5, min_prefix=0)


@pytest.mark.parametrize("policy", ["hash", "range", "replicated"])
class TestChurnIntegrity:
    def test_winners_track_logical_oracle(self, rng, policy):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, policy=policy)
        engine = UpdateEngine(fabric)
        report = engine.apply(synthesize_churn(len(table), COLS, 30, seed=5))
        assert report.rejected_withdrawals == 0
        probes = [random_word(COLS, rng, x_fraction=0.1) for _ in range(16)]
        for key in probes:
            assert fabric.search(key).rule == logical_winner(
                fabric.rule_words, key
            )

    def test_kernel_flushed_after_churn(self, rng, policy):
        """A stale kernel table would keep matching withdrawn rules."""
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, policy=policy, use_kernel=True)
        engine = UpdateEngine(fabric)
        engine.apply(synthesize_churn(len(table), COLS, 24, seed=9))
        probes = [random_word(COLS, rng, x_fraction=0.1) for _ in range(12)]
        for key in probes:
            assert fabric.search(key).rule == logical_winner(
                fabric.rule_words, key
            )


class TestUpdateAccounting:
    def test_add_books_write_and_link_energy(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, policy="hash")
        report = UpdateEngine(fabric).apply(
            bulk_signature_push([random_word(COLS, rng) for _ in range(4)])
        )
        assert report.adds == 4
        assert report.replicas_written == 4  # hash: one replica per rule
        d = report.energy.as_dict()
        assert d["link"] > 0.0
        assert d["distribution"] > 0.0
        assert report.energy.total > d["link"] + d["distribution"]
        assert report.latency > 0.0

    def test_withdraw_erase_is_priced(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, policy="hash")
        report = UpdateEngine(fabric).apply([RuleUpdate("withdraw", rule_id=0)])
        assert report.withdrawals == 1
        assert report.energy.total > 0.0
        assert 0 not in fabric.live_rules()
        assert 0 not in fabric.rule_words

    def test_withdrawn_rule_stops_matching(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, policy="hash")
        # Rule 0 matches itself and outranks everything, so probing
        # with its own word pins the winner deterministically.
        key = table[0]
        winner = fabric.search(key).rule
        assert winner == 0
        UpdateEngine(fabric).apply([RuleUpdate("withdraw", rule_id=winner)])
        assert fabric.search(key).rule != winner

    def test_unknown_withdraw_rejected(self, rng):
        fabric = _fabric(_table(rng), n_chips=2)
        report = UpdateEngine(fabric).apply(
            [RuleUpdate("withdraw", rule_id=999)]
        )
        assert report.rejected_withdrawals == 1
        assert report.withdrawals == 0

    def test_replicated_add_fans_out(self, rng):
        table = _table(rng)
        fabric = _fabric(
            table,
            n_chips=3,
            policy="replicated",
        )
        # Live adds join the priority tail, so they land on one home
        # shard (only the initial hot prefix is replicated everywhere).
        report = UpdateEngine(fabric).apply(
            [RuleUpdate("add", rule=random_word(COLS, rng))]
        )
        assert report.adds == 1
        assert report.replicas_written == 1


class TestCapacity:
    def test_full_fabric_rejects_add_all_or_nothing(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, headroom=0, policy="hash")
        sites_before = {g: list(s) for g, s in fabric.rule_sites.items()}
        next_before = fabric.next_rule_id
        report = UpdateEngine(fabric).apply(
            bulk_signature_push([random_word(COLS, rng)])
        )
        assert report.rejected_adds == 1
        assert report.adds == 0
        assert fabric.next_rule_id == next_before
        assert {g: list(s) for g, s in fabric.rule_sites.items()} == sites_before

    def test_add_reuses_withdrawn_row(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=1, headroom=0, policy="hash")
        engine = UpdateEngine(fabric)
        engine.apply([RuleUpdate("withdraw", rule_id=3)])
        report = engine.apply(
            bulk_signature_push([random_word(COLS, rng)])
        )
        assert report.adds == 1


class TestWearAndRepair:
    def test_repair_relocations_keep_answers_exact(self, rng):
        table = _table(rng)
        fabric = _fabric(table, n_chips=2, spare_rows=4, policy="hash")
        report = age_and_repair(fabric, density=0.03, seed=4)
        assert report.repaired_rows > 0
        assert report.unrepaired_rows == 0
        # Every broken row was relocated into a spare, so the fabric
        # must answer exactly as the undamaged logical rule set.
        probes = [random_word(COLS, rng, x_fraction=0.1) for _ in range(16)]
        for key in probes:
            assert fabric.search(key).rule == logical_winner(
                fabric.rule_words, key
            )

    def test_spare_exhaustion_degrades_availability(self, rng):
        table = _table(rng, n=10)
        fabric = _fabric(table, n_chips=1, spare_rows=1, headroom=0)
        report = age_and_repair(fabric, density=0.6, seed=2)
        assert report.unrepaired_rows > 0
        assert report.banks_exhausted >= 1
        assert report.availability < 1.0
        assert report.degraded_rules

    def test_wear_mode_uses_write_counts(self, rng):
        """Churn-hammered rows must be in the early fault population."""
        table = _table(rng)
        fabric = _fabric(table, n_chips=1, spare_rows=2, headroom=4)
        engine = UpdateEngine(fabric)
        # Hammer row churn: repeated add/withdraw cycles concentrate
        # writes on the first free rows.
        for _ in range(6):
            r = engine.apply(bulk_signature_push([random_word(COLS, rng)]))
            assert r.adds == 1
            engine.apply(
                [RuleUpdate("withdraw", rule_id=fabric.next_rule_id - 1)]
            )
        report = age_and_repair(fabric, density=0.1, seed=4, mode="wear")
        assert report.faults_injected > 0
        assert report.energy.total >= 0.0

    def test_density_validation(self, rng):
        fabric = _fabric(_table(rng), n_chips=1, spare_rows=1)
        with pytest.raises(ClusterError, match="density"):
            age_and_repair(fabric, density=1.5)

    def test_report_serializes(self, rng):
        fabric = _fabric(_table(rng), n_chips=1, spare_rows=2)
        d = age_and_repair(fabric, density=0.02, seed=3).to_dict()
        assert set(d) >= {
            "faults_injected",
            "repaired_rows",
            "unrepaired_rows",
            "availability",
            "repair_energy",
        }
