"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_designs, build_array, get_design
from repro.tcam import ArrayGeometry
from repro.tcam.cells import get_cell


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_geometry() -> ArrayGeometry:
    """A small array shape that keeps per-test runtime negligible."""
    return ArrayGeometry(rows=8, cols=16)


@pytest.fixture
def medium_geometry() -> ArrayGeometry:
    """A moderately sized shape for integration-style tests."""
    return ArrayGeometry(rows=32, cols=32)


@pytest.fixture(params=["cmos16t", "reram2t2r", "fefet2t"])
def any_cell(request):
    """One cell descriptor per technology (parametrized)."""
    return get_cell(request.param)


@pytest.fixture(params=[spec.name for spec in all_designs()])
def any_design(request):
    """Every registered design (parametrized)."""
    return get_design(request.param)


@pytest.fixture
def fefet_array(small_geometry):
    """A small plain FeFET array."""
    return build_array(get_design("fefet2t"), small_geometry)
