"""Tests for the workload-driven design advisor."""

from __future__ import annotations

import pytest

from repro.core.advisor import Candidate, WorkloadProfile, advise
from repro.errors import DesignError

SMALL = dict(rows=16, cols=24)


def _profile(**overrides) -> WorkloadProfile:
    base = dict(SMALL)
    base.update(overrides)
    return WorkloadProfile(**base)


class TestProfileValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(DesignError):
            WorkloadProfile(rows=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(DesignError):
            WorkloadProfile(searches_per_second=0.0)

    def test_rejects_bad_latency(self):
        with pytest.raises(DesignError):
            WorkloadProfile(max_latency=0.0)


class TestAdvise:
    @pytest.fixture(scope="class")
    def default_rec(self):
        return advise(_profile(), n_searches=2)

    def test_every_design_evaluated(self, default_rec):
        assert len(default_rec.candidates) == 6

    def test_best_is_feasible_and_minimal(self, default_rec):
        feasible = [c for c in default_rec.candidates if c.feasible]
        assert default_rec.best in feasible
        assert default_rec.best.total_energy_per_search == min(
            c.total_energy_per_search for c in feasible
        )

    def test_best_is_an_energy_aware_design(self, default_rec):
        """With generous constraints, a proposed/extension design must win
        -- the library's whole thesis in one assertion."""
        assert default_rec.best.design in ("fefet2t_lv", "fefet_cr", "fefet_nand")

    def test_latency_bound_excludes_slow_designs(self):
        rec = advise(_profile(max_latency=4e-10), n_searches=2)
        assert rec.best.search_delay <= 4e-10
        slow = [c for c in rec.candidates if c.search_delay > 4e-10]
        assert all(not c.feasible for c in slow)

    def test_nonvolatile_requirement_excludes_cmos(self):
        rec = advise(_profile(nonvolatile_required=True), n_searches=2)
        cmos = next(c for c in rec.candidates if c.design == "cmos16t")
        assert cmos.excluded_reason == "volatile storage"

    def test_impossible_profile_raises_with_reasons(self):
        with pytest.raises(DesignError, match="no design satisfies"):
            advise(_profile(max_latency=1e-12), n_searches=2)

    def test_low_rate_profile_weighs_standby(self):
        fast = advise(_profile(searches_per_second=1e8), n_searches=2)
        slow = advise(_profile(searches_per_second=1e3), n_searches=2)
        best_fast = fast.best.total_energy_per_search
        best_slow = slow.best.total_energy_per_search
        assert best_slow > best_fast  # idle leakage amortizes in

    def test_candidate_feasible_property(self):
        ok = Candidate("x", 1.0, 1.0, True, True, None)
        bad = Candidate("x", 1.0, 1.0, False, True, "latency")
        assert ok.feasible and not bad.feasible
