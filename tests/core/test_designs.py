"""Tests for the design registry and array factory."""

from __future__ import annotations

import pytest

from repro.circuits.precharge import ClampedPrecharge, FullSwingPrecharge
from repro.core.designs import (
    DEFAULT_LV_SWING,
    DESIGN_NAMES,
    all_designs,
    build_array,
    get_design,
)
from repro.errors import DesignError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(8, 16)


class TestRegistry:
    def test_six_designs_registered(self):
        assert len(DESIGN_NAMES) == 6

    def test_expected_names(self):
        assert set(DESIGN_NAMES) == {
            "cmos16t",
            "reram2t2r",
            "fefet2t",
            "fefet2t_lv",
            "fefet_cr",
            "fefet_nand",
        }

    def test_lookup_roundtrip(self):
        for name in DESIGN_NAMES:
            assert get_design(name).name == name

    def test_unknown_name_lists_valid_keys(self):
        with pytest.raises(DesignError, match="cmos16t"):
            get_design("nonsense")

    def test_proposed_flags(self):
        assert get_design("fefet2t_lv").is_proposed
        assert get_design("fefet_cr").is_proposed
        assert not get_design("cmos16t").is_proposed

    def test_all_designs_ordered_baselines_first(self):
        names = [s.name for s in all_designs()]
        assert names.index("cmos16t") < names.index("fefet2t_lv")

    def test_cell_factories_fresh_instances(self):
        spec = get_design("fefet2t")
        assert spec.build_cell() is not spec.build_cell()


class TestBuildArray:
    def test_baseline_gets_full_swing(self):
        arr = build_array(get_design("fefet2t"), GEO)
        assert isinstance(arr.precharge, FullSwingPrecharge)

    def test_lv_gets_clamped_precharge_at_default_swing(self):
        arr = build_array(get_design("fefet2t_lv"), GEO)
        assert isinstance(arr.precharge, ClampedPrecharge)
        assert arr.precharge.target_voltage() == pytest.approx(DEFAULT_LV_SWING)

    def test_cr_gets_race_sensing(self):
        arr = build_array(get_design("fefet_cr"), GEO)
        assert arr.sensing == "current_race"
        assert arr.race_amp is not None

    def test_swing_override(self):
        arr = build_array(get_design("fefet2t_lv"), GEO, ml_swing=0.4)
        assert arr.precharge.target_voltage() == pytest.approx(0.4)

    def test_sense_reference_tracks_swing(self):
        arr = build_array(get_design("fefet2t_lv"), GEO, ml_swing=0.4)
        assert arr.sense_amp.v_ref == pytest.approx(0.2)

    def test_swing_rejected_for_race_design(self):
        with pytest.raises(DesignError):
            build_array(get_design("fefet_cr"), GEO, ml_swing=0.5)

    def test_swing_above_vdd_rejected(self):
        with pytest.raises(DesignError):
            build_array(get_design("fefet2t_lv"), GEO, ml_swing=1.5)

    def test_vdd_override(self):
        arr = build_array(get_design("cmos16t"), GEO, vdd=0.8)
        assert arr.vdd == pytest.approx(0.8)

    def test_t_eval_override(self):
        arr = build_array(get_design("fefet2t"), GEO, t_eval=1e-9)
        assert arr.t_eval == pytest.approx(1e-9)
