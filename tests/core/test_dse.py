"""Tests for design-space exploration and Pareto extraction."""

from __future__ import annotations

import pytest

from repro.core.dse import DesignPoint, explore
from repro.errors import DesignError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(8, 24)


def _point(**overrides) -> DesignPoint:
    base = dict(
        design="x",
        v_ml=None,
        vdd=0.9,
        energy_per_search=1.0,
        search_delay=1.0,
        margin=1.0,
        functional=True,
    )
    base.update(overrides)
    return DesignPoint(**base)


class TestDominance:
    def test_strictly_better_dominates(self):
        a = _point(energy_per_search=0.5)
        b = _point()
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        assert not _point().dominates(_point())

    def test_tradeoff_points_incomparable(self):
        a = _point(energy_per_search=0.5, search_delay=2.0)
        b = _point()
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_functional_dominates_broken(self):
        a = _point()
        b = _point(functional=False, energy_per_search=0.1)
        assert a.dominates(b)

    def test_higher_margin_wins(self):
        a = _point(margin=2.0)
        assert a.dominates(_point())


class TestExplore:
    @pytest.fixture(scope="class")
    def result(self):
        return explore(GEO, ml_swings=(0.5, 0.9), n_searches=3)

    def test_point_count(self, result):
        # 5 non-LV designs + 2 LV swings.
        assert len(result.points) == 7

    def test_front_non_empty_and_subset(self, result):
        assert result.front
        assert set(p.design for p in result.front) <= set(p.design for p in result.points)

    def test_front_is_mutually_non_dominated(self, result):
        for p in result.front:
            for q in result.front:
                assert not p.dominates(q) or p is q

    def test_proposed_designs_reach_the_front(self, result):
        """At least one energy-aware design must be Pareto-optimal --
        otherwise the paper has no story."""
        front_designs = {p.design for p in result.front}
        assert front_designs & {"fefet2t_lv", "fefet_cr"}

    def test_cmos_not_lowest_energy(self, result):
        by_design = {p.design: p for p in result.points if p.v_ml in (None, 0.5)}
        e_cmos = by_design["cmos16t"].energy_per_search
        e_lv = min(
            p.energy_per_search for p in result.points if p.design == "fefet2t_lv"
        )
        assert e_lv < e_cmos

    def test_rejects_bad_n_searches(self):
        with pytest.raises(DesignError):
            explore(GEO, n_searches=0)
