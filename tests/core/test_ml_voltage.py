"""Tests for the ML swing solver (Design LV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.designs import get_design
from repro.core.ml_voltage import energy_vs_vml, margin_at_vml, minimum_ml_voltage
from repro.errors import DesignError
from repro.tcam import ArrayGeometry

GEO = ArrayGeometry(8, 32)
LV = get_design("fefet2t_lv")


class TestMarginAtVml:
    def test_full_swing_report(self):
        rep = margin_at_vml(LV, GEO, 0.9)
        assert rep.functional
        assert rep.margin > 0.3
        assert rep.energy_per_search > 0.0

    def test_margin_shrinks_with_swing(self):
        m_high = margin_at_vml(LV, GEO, 0.9).margin
        m_low = margin_at_vml(LV, GEO, 0.45).margin
        assert m_low < m_high

    def test_energy_shrinks_with_swing(self):
        e_high = margin_at_vml(LV, GEO, 0.9).energy_per_search
        e_low = margin_at_vml(LV, GEO, 0.45).energy_per_search
        assert e_low < e_high

    def test_guardband_consistent(self):
        rep = margin_at_vml(LV, GEO, 0.6, sa_offset_sigma=0.02)
        assert rep.guardband_sigmas == pytest.approx(rep.margin / 0.02)

    def test_rejects_race_design(self):
        with pytest.raises(DesignError):
            margin_at_vml(get_design("fefet_cr"), GEO, 0.5)

    def test_rejects_bad_sigma(self):
        with pytest.raises(DesignError):
            margin_at_vml(LV, GEO, 0.5, sa_offset_sigma=0.0)


class TestMinimumMlVoltage:
    def test_solution_meets_guardband(self):
        v = minimum_ml_voltage(LV, GEO, guardband_sigmas=10.0)
        rep = margin_at_vml(LV, GEO, v)
        assert rep.margin >= 10.0 * 0.010 * 0.99  # within bisection tolerance

    def test_tighter_guardband_needs_more_swing(self):
        v_loose = minimum_ml_voltage(LV, GEO, guardband_sigmas=5.0)
        v_tight = minimum_ml_voltage(LV, GEO, guardband_sigmas=30.0)
        assert v_tight >= v_loose

    def test_impossible_guardband_raises(self):
        with pytest.raises(DesignError):
            minimum_ml_voltage(LV, GEO, guardband_sigmas=1e4)

    def test_rejects_bad_bracket(self):
        with pytest.raises(DesignError):
            minimum_ml_voltage(LV, GEO, v_lo=1.0, v_hi=0.5)


class TestEnergySweep:
    def test_sweep_length_and_monotone_energy(self):
        swings = np.array([0.4, 0.6, 0.9])
        reports = energy_vs_vml(LV, GEO, swings)
        assert len(reports) == 3
        energies = [r.energy_per_search for r in reports]
        assert energies == sorted(energies)

    def test_rejects_non_positive_swing(self):
        with pytest.raises(DesignError):
            energy_vs_vml(LV, GEO, np.array([0.0, 0.5]))
