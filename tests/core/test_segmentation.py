"""Tests for the segmentation analytics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segmentation import (
    expected_energy_ratio,
    expected_survivor_fraction,
    optimal_probe_width,
)
from repro.errors import DesignError


class TestSurvivorFraction:
    def test_binary_probe(self):
        assert expected_survivor_fraction(4, 0.0) == pytest.approx(2**-4)

    def test_all_x_survives_everything(self):
        assert expected_survivor_fraction(10, 1.0) == pytest.approx(1.0)

    def test_zero_probe_is_one(self):
        assert expected_survivor_fraction(0, 0.3) == 1.0

    @given(
        s=st.integers(min_value=1, max_value=32),
        x=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_in_unit_interval_and_monotone(self, s, x):
        f = expected_survivor_fraction(s, x)
        assert 0.0 <= f <= 1.0
        assert expected_survivor_fraction(s + 1, x) <= f + 1e-12

    def test_rejects_bad_inputs(self):
        with pytest.raises(DesignError):
            expected_survivor_fraction(-1, 0.0)
        with pytest.raises(DesignError):
            expected_survivor_fraction(2, 1.5)

    def test_matches_monte_carlo(self, rng):
        """The analytic formula agrees with sampled ternary matching."""
        s, x = 6, 0.3
        n = 20000
        stored = rng.integers(0, 2, size=(n, s))
        xmask = rng.random((n, s)) < x
        key = rng.integers(0, 2, size=s)
        col_match = xmask | (stored == key[np.newaxis, :])
        frac = float(np.mean(col_match.all(axis=1)))
        assert frac == pytest.approx(expected_survivor_fraction(s, x), abs=0.01)


class TestEnergyRatio:
    def test_no_probe_no_saving(self):
        assert expected_energy_ratio(0, 64, 0.0) == 1.0

    def test_reasonable_probe_saves(self):
        assert expected_energy_ratio(8, 64, 0.0) < 0.25

    def test_full_probe_no_saving(self):
        assert expected_energy_ratio(64, 64, 0.0) == pytest.approx(1.0)

    def test_rejects_probe_above_cols(self):
        with pytest.raises(DesignError):
            expected_energy_ratio(65, 64, 0.0)


class TestOptimalProbe:
    def test_optimum_beats_neighbours(self):
        plan = optimal_probe_width(64, x_fraction=0.0)
        s = plan.probe_cols
        assert plan.expected_energy_ratio <= expected_energy_ratio(s - 1, 64, 0.0)
        assert plan.expected_energy_ratio <= expected_energy_ratio(s + 1, 64, 0.0)

    def test_optimum_small_for_binary_data(self):
        plan = optimal_probe_width(64, x_fraction=0.0)
        assert 2 <= plan.probe_cols <= 12

    def test_x_heavy_data_needs_wider_probe(self):
        binary = optimal_probe_width(64, x_fraction=0.0)
        ternary = optimal_probe_width(64, x_fraction=0.5)
        assert ternary.probe_cols > binary.probe_cols

    def test_rejects_tiny_word(self):
        with pytest.raises(DesignError):
            optimal_probe_width(1)

    def test_ratio_below_one_for_wide_words(self):
        assert optimal_probe_width(128, 0.3).expected_energy_ratio < 0.5
