"""Tests for technique sets and the ablation grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selective import TechniqueSet, technique_grid
from repro.errors import DesignError
from repro.tcam import ArrayGeometry, SegmentedBank, TCAMArray, random_word

GEO = ArrayGeometry(16, 32)


class TestTechniqueSet:
    def test_base_label(self):
        assert TechniqueSet().label == "base"

    def test_combined_label(self):
        t = TechniqueSet(low_voltage_ml=True, segmentation=True, early_termination=True)
        assert t.label == "LV+SEG+ET"

    def test_early_termination_requires_segmentation(self):
        with pytest.raises(DesignError):
            TechniqueSet(early_termination=True)

    def test_rejects_bad_probe(self):
        with pytest.raises(DesignError):
            TechniqueSet(segmentation=True, probe_cols=0)

    def test_base_builds_flat_array(self):
        built = TechniqueSet().build(GEO)
        assert isinstance(built, TCAMArray)
        from repro.circuits.precharge import FullSwingPrecharge

        assert isinstance(built.precharge, FullSwingPrecharge)

    def test_lv_builds_clamped_array(self):
        built = TechniqueSet(low_voltage_ml=True).build(GEO)
        from repro.circuits.precharge import ClampedPrecharge

        assert isinstance(built.precharge, ClampedPrecharge)

    def test_segmentation_builds_bank(self):
        built = TechniqueSet(segmentation=True, probe_cols=8).build(GEO)
        assert isinstance(built, SegmentedBank)
        assert built.probe_cols == 8

    def test_lv_seg_bank_uses_clamp_in_both_stages(self):
        built = TechniqueSet(low_voltage_ml=True, segmentation=True).build(GEO)
        from repro.circuits.precharge import ClampedPrecharge

        assert isinstance(built.stage1.precharge, ClampedPrecharge)
        assert isinstance(built.stage2.precharge, ClampedPrecharge)

    def test_probe_must_fit_geometry(self):
        with pytest.raises(DesignError):
            TechniqueSet(segmentation=True, probe_cols=32).build(GEO)

    def test_built_objects_search_correctly(self):
        rng = np.random.default_rng(0)
        words = [random_word(32, rng, x_fraction=0.2) for _ in range(16)]
        for techniques in technique_grid():
            built = techniques.build(GEO)
            built.load(words)
            out = built.search(words[3])
            assert out.match_mask[3], techniques.label


class TestGrid:
    def test_six_ablation_points(self):
        assert len(technique_grid()) == 6

    def test_starts_with_base_ends_with_everything(self):
        grid = technique_grid()
        assert grid[0].label == "base"
        assert grid[-1].label == "LV+SEG+ET"

    def test_labels_unique(self):
        labels = [t.label for t in technique_grid()]
        assert len(set(labels)) == len(labels)
