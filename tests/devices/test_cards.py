"""Tests for device-card serialization."""

from __future__ import annotations

import json

import pytest

from repro.devices.cards import from_card, load_card, save_card, to_card
from repro.devices.fefet import FeFETParams
from repro.devices.material import HZO_10NM
from repro.devices.mosfet import nmos_45nm
from repro.devices.resistive import ReRAMParams
from repro.errors import DeviceError


class TestRoundTrips:
    @pytest.mark.parametrize(
        "obj",
        [HZO_10NM, FeFETParams(), nmos_45nm(), ReRAMParams()],
        ids=["material", "fefet", "mosfet", "reram"],
    )
    def test_dict_round_trip(self, obj):
        assert from_card(to_card(obj)) == obj

    def test_file_round_trip(self, tmp_path):
        path = save_card(tmp_path / "fefet.json", FeFETParams(memory_window=1.5))
        loaded = load_card(path)
        assert loaded.memory_window == 1.5
        assert loaded == FeFETParams(memory_window=1.5)

    def test_nested_material_round_trips(self):
        card = to_card(FeFETParams())
        assert card["material"]["kind"] == "ferro_material"
        rebuilt = from_card(card)
        assert rebuilt.material == HZO_10NM

    def test_json_is_plain(self, tmp_path):
        path = save_card(tmp_path / "m.json", HZO_10NM)
        data = json.loads(path.read_text())
        assert data["kind"] == "ferro_material"
        assert data["p_rem"] == pytest.approx(0.20)


class TestPropertyRoundTrip:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        window=st.floats(min_value=0.5, max_value=2.0),
        vt_mid=st.floats(min_value=0.5, max_value=1.5),
        width=st.floats(min_value=30e-9, max_value=500e-9),
        v_prog=st.floats(min_value=2.0, max_value=6.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_fefet_params_round_trip(self, window, vt_mid, width, v_prog):
        params = FeFETParams(
            memory_window=window, vt_mid=vt_mid, width=width, program_voltage=v_prog
        )
        assert from_card(to_card(params)) == params

    @given(
        r_lrs=st.floats(min_value=1e3, max_value=1e5),
        ratio=st.floats(min_value=2.0, max_value=1e4),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_reram_params_round_trip(self, r_lrs, ratio):
        params = ReRAMParams(r_lrs=r_lrs, r_hrs=r_lrs * ratio)
        assert from_card(to_card(params)) == params


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(DeviceError, match="unknown card kind"):
            from_card({"kind": "quantum_dot"})

    def test_missing_kind_rejected(self):
        with pytest.raises(DeviceError):
            from_card({"p_rem": 0.2})

    def test_unknown_field_rejected(self):
        card = to_card(ReRAMParams())
        card["flux_capacitance"] = 1.21
        with pytest.raises(DeviceError, match="unknown field"):
            from_card(card)

    def test_incomplete_card_rejected(self):
        with pytest.raises(DeviceError, match="incomplete"):
            from_card({"kind": "ferro_material", "p_rem": 0.2})

    def test_field_validation_still_applies(self):
        card = to_card(HZO_10NM)
        card["p_rem"] = 0.9  # exceeds p_sat -> material validation fires
        with pytest.raises(DeviceError):
            from_card(card)

    def test_unserializable_object_rejected(self):
        with pytest.raises(DeviceError, match="no card kind"):
            to_card(object())

    def test_broken_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DeviceError, match="cannot read"):
            load_card(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DeviceError):
            load_card(tmp_path / "nope.json")
