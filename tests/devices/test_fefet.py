"""Tests for the behavioral FeFET."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.fefet import FeFET, FeFETParams, FeFETState
from repro.devices.preisach import SwitchingPulse
from repro.errors import DeviceError


class TestStateAndThreshold:
    def test_powers_on_in_hvt(self):
        f = FeFET()
        assert f.state is FeFETState.HVT
        assert f.vt == pytest.approx(f.params.vt_hvt)

    def test_vt_window_endpoints(self):
        p = FeFETParams()
        assert p.vt_hvt - p.vt_lvt == pytest.approx(p.memory_window)

    def test_force_state_moves_vt(self):
        f = FeFET()
        f.force_state(FeFETState.LVT)
        assert f.vt == pytest.approx(f.params.vt_lvt)

    def test_vt_offset_adds(self):
        f = FeFET(vt_offset=0.05)
        assert f.vt == pytest.approx(f.params.vt_hvt + 0.05)

    def test_rejects_zero_window(self):
        with pytest.raises(DeviceError):
            FeFETParams(memory_window=0.0)

    def test_rejects_program_voltage_below_coercive(self):
        with pytest.raises(DeviceError):
            FeFETParams(program_voltage=0.5)

    def test_target_polarization_mapping(self):
        assert FeFETState.LVT.target_polarization() == 1.0
        assert FeFETState.HVT.target_polarization() == -1.0


class TestIV:
    def test_lvt_conducts_hvt_does_not(self):
        f = FeFET()
        f.force_state(FeFETState.LVT)
        i_on = f.current(0.9, 0.1)
        f.force_state(FeFETState.HVT)
        i_off = f.current(0.9, 0.1)
        assert i_on > 1e4 * i_off

    def test_on_off_ratio_large_and_state_preserving(self):
        f = FeFET()
        f.force_state(FeFETState.LVT)
        ratio = f.on_off_ratio(0.9, 0.1)
        assert ratio > 1e5
        assert f.state is FeFETState.LVT  # restored

    def test_on_current_requires_lvt(self):
        f = FeFET()  # HVT
        with pytest.raises(DeviceError):
            f.on_current(0.9, 0.1)

    def test_butterfly_curves_ordered(self):
        f = FeFET()
        vgs = np.linspace(0.0, 2.0, 30)
        id_lvt, id_hvt = f.butterfly_curves(vgs, 0.1)
        assert np.all(id_lvt >= id_hvt)

    def test_butterfly_restores_state(self):
        f = FeFET()
        f.force_state(FeFETState.LVT)
        f.butterfly_curves(np.linspace(0, 1, 5), 0.1)
        assert f.state is FeFETState.LVT

    def test_capacitances_positive(self):
        f = FeFET()
        assert f.gate_capacitance > 0.0
        assert f.junction_capacitance > 0.0


class TestWrite:
    def test_nominal_write_flips_state(self):
        f = FeFET()
        result = f.write(FeFETState.LVT)
        assert f.state is FeFETState.LVT
        assert result.polarization_after == pytest.approx(1.0)

    def test_write_energy_femtojoule_scale(self):
        f = FeFET()
        result = f.write(FeFETState.LVT)
        assert 1e-16 < result.energy < 1e-13

    def test_write_to_same_state_moves_no_charge(self):
        f = FeFET()
        f.write(FeFETState.LVT)
        second = f.write(FeFETState.LVT)
        assert second.switched_charge == pytest.approx(0.0)

    def test_write_latency_is_pulse_width(self):
        f = FeFET()
        result = f.write(FeFETState.HVT)
        assert result.latency == pytest.approx(f.params.program_width)

    def test_nominal_write_energy_analytic_close_to_simulated(self):
        f = FeFET()
        simulated = f.write(FeFETState.LVT).energy
        analytic = f.nominal_write_energy(FeFETState.LVT)
        assert simulated == pytest.approx(analytic, rel=0.05)

    def test_partial_pulse_partially_switches(self):
        """An intermediate pulse flips only the low-coercive-field domains."""
        f = FeFET()
        f.apply_write_pulse(SwitchingPulse(2.6, 20e-9), stochastic=False)
        assert -1.0 < f.polarization < 1.0

    def test_weak_disturb_pulse_is_harmless(self):
        """A 1.8 V / 1 ns half-select disturb must not move the state."""
        f = FeFET()
        f.apply_write_pulse(SwitchingPulse(1.8, 1e-9), stochastic=False)
        assert f.polarization == pytest.approx(-1.0)

    def test_write_deterministic_vs_stochastic_seeded(self):
        f1 = FeFET(rng=np.random.default_rng(4))
        f2 = FeFET(rng=np.random.default_rng(4))
        r1 = f1.write(FeFETState.LVT, stochastic=True)
        r2 = f2.write(FeFETState.LVT, stochastic=True)
        assert r1.polarization_after == r2.polarization_after


class TestGeometry:
    def test_scaled_width_changes_current(self):
        wide = FeFET(FeFETParams().scaled(180e-9))
        narrow = FeFET(FeFETParams().scaled(90e-9))
        wide.force_state(FeFETState.LVT)
        narrow.force_state(FeFETState.LVT)
        assert wide.current(0.9, 0.1) == pytest.approx(
            2.0 * narrow.current(0.9, 0.1), rel=1e-6
        )

    def test_rejects_zero_width(self):
        with pytest.raises(DeviceError):
            FeFETParams(width=0.0)
