"""Tests for the Landau-Khalatnikov model, including Preisach cross-validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.devices.landau import LandauKhalatnikov, LKParams
from repro.devices.material import HZO_10NM
from repro.devices.preisach import loop_coercive_voltage, saturation_loop
from repro.errors import DeviceError

PARAMS = LKParams.from_material(HZO_10NM)


class TestCoefficients:
    def test_well_position_is_pr(self):
        assert PARAMS.p_spontaneous == pytest.approx(HZO_10NM.p_rem)

    def test_intrinsic_coercive_field_matches_material(self):
        assert PARAMS.e_coercive_intrinsic == pytest.approx(HZO_10NM.e_coercive)

    def test_rejects_non_positive_coefficients(self):
        with pytest.raises(DeviceError):
            LKParams(alpha=0.0, beta=1.0, rho=1.0)

    def test_viscosity_sets_switching_scale(self):
        fast = LKParams.from_material(HZO_10NM, switch_time_2x=1e-10)
        slow = LKParams.from_material(HZO_10NM, switch_time_2x=1e-8)
        assert fast.rho < slow.rho


class TestDynamics:
    def test_wells_are_stationary(self):
        lk = LandauKhalatnikov(PARAMS, p_initial=PARAMS.p_spontaneous)
        lk.step(0.0, 1e-10)
        assert lk.polarization == pytest.approx(PARAMS.p_spontaneous, rel=1e-9)

    def test_zero_crossing_time_at_2x_overdrive_about_1ns(self):
        lk = LandauKhalatnikov(PARAMS)
        t = lk.switching_time(2.0 * HZO_10NM.e_coercive)
        assert 0.3e-9 < t < 3e-9

    def test_switching_faster_with_overdrive(self):
        lk = LandauKhalatnikov(PARAMS)
        t2 = lk.switching_time(2.0 * HZO_10NM.e_coercive)
        t3 = lk.switching_time(3.0 * HZO_10NM.e_coercive)
        assert t3 < t2

    def test_subcoercive_field_never_switches(self):
        lk = LandauKhalatnikov(PARAMS)
        assert lk.switching_time(0.9 * HZO_10NM.e_coercive, t_max=1e-6) == math.inf

    def test_transient_tracks_relaxation(self):
        lk = LandauKhalatnikov(PARAMS, p_initial=0.5 * PARAMS.p_spontaneous)
        trace = lk.transient(np.zeros(500), dt=1e-11)
        # From half-well the state relaxes outward to the positive well.
        assert trace[-1] == pytest.approx(PARAMS.p_spontaneous, rel=1e-3)
        assert np.all(np.diff(trace) >= -1e-9)

    def test_step_rejects_bad_dt(self):
        with pytest.raises(DeviceError):
            LandauKhalatnikov(PARAMS).step(0.0, 0.0)


class TestQuasiStaticLoop:
    @pytest.fixture(scope="class")
    def loop(self):
        lk = LandauKhalatnikov(PARAMS)
        return lk.quasi_static_loop(3.0 * HZO_10NM.e_coercive, n_points=120)

    def test_loop_is_hysteretic(self, loop):
        fields, pol = loop
        half = len(fields) // 2
        i_up = int(np.argmin(np.abs(fields[:half])))
        i_down = half + int(np.argmin(np.abs(fields[half:])))
        assert pol[i_down] > pol[i_up]

    def test_remanence_matches_material(self, loop):
        fields, pol = loop
        half = len(fields) // 2
        i_down = half + int(np.argmin(np.abs(fields[half:])))
        assert pol[i_down] == pytest.approx(HZO_10NM.p_rem, rel=0.05)

    def test_coercive_field_within_10pct_of_intrinsic(self, loop):
        fields, pol = loop
        half = len(fields) // 2
        cross = np.flatnonzero(np.diff(np.signbit(pol[:half])))
        assert cross.size
        e_c = fields[:half][int(cross[0]) + 1]
        assert e_c == pytest.approx(HZO_10NM.e_coercive, rel=0.10)

    def test_rejects_bad_field_range(self):
        with pytest.raises(DeviceError):
            LandauKhalatnikov(PARAMS).quasi_static_loop(0.0)


class TestCrossValidation:
    def test_lk_and_preisach_agree_on_loop_landmarks(self):
        """The two independent ferroelectric engines must agree on the
        remanence exactly and on the coercive voltage within the domain
        spread the Preisach ensemble carries."""
        lk = LandauKhalatnikov(PARAMS)
        fields, pol = lk.quasi_static_loop(3.0 * HZO_10NM.e_coercive, n_points=160)

        v, p = saturation_loop(HZO_10NM, 3.0, n_points=201, n_domains=512,
                               rng=np.random.default_rng(0))
        vc_preisach = loop_coercive_voltage(v, p)

        half = len(fields) // 2
        cross = np.flatnonzero(np.diff(np.signbit(pol[:half])))
        vc_lk = fields[:half][int(cross[0]) + 1] * HZO_10NM.thickness

        assert vc_lk == pytest.approx(vc_preisach, rel=0.20)
        i_down = half + int(np.argmin(np.abs(fields[half:])))
        assert pol[i_down] == pytest.approx(p.max(), rel=0.05)
