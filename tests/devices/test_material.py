"""Tests for repro.devices.material."""

from __future__ import annotations

import math

import pytest

from repro.devices.material import HZO_10NM, FerroMaterial
from repro.errors import DeviceError
from repro.units import NANO


def _material(**overrides) -> FerroMaterial:
    base = dict(
        name="test",
        p_sat=0.25,
        p_rem=0.20,
        e_coercive=1.0e8,
        ec_sigma_rel=0.1,
        thickness=10 * NANO,
        eps_rel=30.0,
        tau0=1e-10,
        e_activation=2.2e8,
        merz_exponent=2.0,
        endurance_cycles=1e10,
    )
    base.update(overrides)
    return FerroMaterial(**base)


class TestValidation:
    def test_default_hzo_is_valid(self):
        assert HZO_10NM.p_rem == pytest.approx(0.20)

    def test_rejects_pr_above_psat(self):
        with pytest.raises(DeviceError):
            _material(p_rem=0.30, p_sat=0.25)

    def test_rejects_negative_polarization(self):
        with pytest.raises(DeviceError):
            _material(p_rem=-0.1)

    def test_rejects_zero_coercive_field(self):
        with pytest.raises(DeviceError):
            _material(e_coercive=0.0)

    def test_rejects_zero_thickness(self):
        with pytest.raises(DeviceError):
            _material(thickness=0.0)

    def test_rejects_sigma_out_of_range(self):
        with pytest.raises(DeviceError):
            _material(ec_sigma_rel=1.0)


class TestDerivedQuantities:
    def test_coercive_voltage_is_field_times_thickness(self):
        m = _material()
        assert m.v_coercive == pytest.approx(1.0e8 * 10 * NANO)  # 1.0 V

    def test_hzo_coercive_voltage_about_one_volt(self):
        assert HZO_10NM.v_coercive == pytest.approx(1.0, rel=0.01)

    def test_capacitance_per_area_positive(self):
        assert _material().capacitance_per_area > 0.0

    def test_field_conversion(self):
        m = _material()
        assert m.field(1.0) == pytest.approx(1.0 / (10 * NANO))


class TestMerzSwitching:
    def test_strong_field_switches_fast(self):
        m = _material()
        t_fast = m.switching_time(4.0e8)
        assert t_fast < 1e-6

    def test_switching_time_monotone_in_field(self):
        m = _material()
        fields = [1.5e8, 2.0e8, 3.0e8, 4.0e8]
        times = [m.switching_time(f) for f in fields]
        assert times == sorted(times, reverse=True)

    def test_zero_field_never_switches(self):
        assert _material().switching_time(0.0) == math.inf

    def test_tiny_field_overflows_to_infinity(self):
        assert _material().switching_time(1.0) == math.inf

    def test_sign_of_field_irrelevant(self):
        m = _material()
        assert m.switching_time(-3.0e8) == pytest.approx(m.switching_time(3.0e8))
