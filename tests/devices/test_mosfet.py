"""Tests for the EKV MOSFET model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import MOSFET, ekv_current, nmos_45nm, pmos_45nm
from repro.errors import DeviceError
from repro.units import NANO, thermal_voltage

PHI_T = thermal_voltage(300.0)


class TestEkvCore:
    def test_zero_vds_zero_current(self):
        assert ekv_current(0.9, 0.0, 0.42, 1e-3, 1.25, PHI_T) == pytest.approx(0.0, abs=1e-15)

    def test_rejects_negative_vds(self):
        with pytest.raises(DeviceError):
            ekv_current(0.9, -0.1, 0.42, 1e-3, 1.25, PHI_T)

    def test_rejects_slope_below_one(self):
        with pytest.raises(DeviceError):
            ekv_current(0.9, 0.5, 0.42, 1e-3, 0.9, PHI_T)

    @given(
        vgs=st.floats(min_value=0.0, max_value=1.2),
        vds=st.floats(min_value=0.0, max_value=1.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_current_non_negative(self, vgs, vds):
        assert ekv_current(vgs, vds, 0.42, 1e-3, 1.25, PHI_T) >= 0.0

    @given(vds=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_vgs(self, vds):
        currents = [
            ekv_current(v, vds, 0.42, 1e-3, 1.25, PHI_T)
            for v in np.linspace(0.0, 1.2, 25)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    @given(vgs=st.floats(min_value=0.5, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_vds(self, vgs):
        currents = [
            ekv_current(vgs, v, 0.42, 1e-3, 1.25, PHI_T)
            for v in np.linspace(0.0, 1.2, 25)
        ]
        assert all(b >= a - 1e-18 for a, b in zip(currents, currents[1:]))

    def test_subthreshold_slope_matches_n_phi_t(self):
        """Deep below threshold, current decades follow S = n * phi_t * ln(10)."""
        n = 1.25
        i1 = ekv_current(0.10, 0.9, 0.42, 1e-3, n, PHI_T)
        i2 = ekv_current(0.10 - n * PHI_T * np.log(10.0), 0.9, 0.42, 1e-3, n, PHI_T)
        assert i1 / i2 == pytest.approx(10.0, rel=0.03)

    def test_strong_inversion_roughly_quadratic(self):
        i1 = ekv_current(0.42 + 0.2, 2.0, 0.42, 1e-3, 1.0, PHI_T)
        i2 = ekv_current(0.42 + 0.4, 2.0, 0.42, 1e-3, 1.0, PHI_T)
        assert i2 / i1 == pytest.approx(4.0, rel=0.15)

    def test_channel_length_modulation_increases_current(self):
        base = ekv_current(0.9, 0.9, 0.42, 1e-3, 1.25, PHI_T, lambda_cl=0.0)
        clm = ekv_current(0.9, 0.9, 0.42, 1e-3, 1.25, PHI_T, lambda_cl=0.1)
        assert clm == pytest.approx(base * 1.09, rel=1e-6)


class TestMOSFETDevice:
    def test_on_current_microamps(self):
        m = MOSFET(nmos_45nm())
        assert 10e-6 < m.on_current(0.9) < 1e-3

    def test_off_current_picoamps(self):
        m = MOSFET(nmos_45nm())
        assert m.off_current(0.9) < 1e-9

    def test_on_off_ratio_large(self):
        m = MOSFET(nmos_45nm())
        assert m.on_current(0.9) / m.off_current(0.9) > 1e5

    def test_pmos_weaker_than_nmos_at_same_width(self):
        n = MOSFET(nmos_45nm(width=90 * NANO))
        p = MOSFET(pmos_45nm(width=90 * NANO))
        assert p.on_current(0.9) < n.on_current(0.9)

    def test_width_scaling_of_current(self):
        m1 = MOSFET(nmos_45nm(width=90 * NANO))
        m2 = MOSFET(nmos_45nm(width=180 * NANO))
        assert m2.on_current(0.9) == pytest.approx(2.0 * m1.on_current(0.9))

    def test_width_scaling_of_capacitance(self):
        m1 = MOSFET(nmos_45nm(width=90 * NANO))
        m2 = MOSFET(nmos_45nm(width=180 * NANO))
        assert m2.gate_capacitance == pytest.approx(2.0 * m1.gate_capacitance)
        assert m2.junction_capacitance == pytest.approx(2.0 * m1.junction_capacitance)

    def test_effective_resistance_definition(self):
        m = MOSFET(nmos_45nm())
        assert m.effective_resistance(0.9) == pytest.approx(0.9 / (2 * m.on_current(0.9)))

    def test_scaled_returns_new_params(self):
        p = nmos_45nm()
        p2 = p.scaled(200 * NANO)
        assert p2.width == 200 * NANO
        assert p.width != p2.width

    def test_iv_curve_shape(self):
        m = MOSFET(nmos_45nm())
        vgs = np.linspace(0, 1.2, 20)
        curve = m.iv_curve(vgs, 0.9)
        assert curve.shape == (20,)
        assert np.all(np.diff(curve) >= 0.0)

    def test_rejects_bad_polarity(self):
        from repro.devices.mosfet import MOSFETParams

        with pytest.raises(DeviceError):
            MOSFETParams(
                name="x", polarity="z", vt0=0.4, kp=1e-4, n_slope=1.2,
                lambda_cl=0.1, width=1e-7, length=4.5e-8,
                c_ox_per_area=1e-2, c_overlap_per_width=3e-10,
                c_junction_per_width=8e-10,
            )

    def test_rejects_zero_width(self):
        with pytest.raises(DeviceError):
            nmos_45nm(width=0.0)

    def test_hotter_device_leaks_more(self):
        cold = MOSFET(nmos_45nm(), temperature_k=300.0)
        hot = MOSFET(nmos_45nm(), temperature_k=360.0)
        assert hot.off_current(0.9) > cold.off_current(0.9)
