"""Tests for the Preisach hysteresis model, including the two classical
Preisach properties (wiping-out and congruency) as hypothesis checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.material import HZO_10NM
from repro.devices.preisach import (
    Hysteron,
    PreisachModel,
    SwitchingPulse,
    loop_coercive_voltage,
    remanent_window,
    saturation_loop,
)
from repro.errors import DeviceError


def _model(n_domains=64, seed=0) -> PreisachModel:
    return PreisachModel(HZO_10NM, n_domains=n_domains, rng=np.random.default_rng(seed))


class TestHysteron:
    def test_switches_up_at_threshold(self):
        h = Hysteron(ec=1.0)
        assert h.apply(1.0) == 1

    def test_switches_down_at_negative_threshold(self):
        h = Hysteron(ec=1.0, state=1)
        assert h.apply(-1.0) == -1

    def test_holds_state_between_thresholds(self):
        h = Hysteron(ec=1.0, state=1)
        assert h.apply(0.5) == 1
        assert h.apply(-0.5) == 1

    def test_imprint_shifts_thresholds(self):
        h = Hysteron(ec=1.0, imprint=0.5)
        assert h.apply(1.2) == -1  # effective 0.7 < ec
        assert h.apply(1.6) == 1

    def test_rejects_non_positive_ec(self):
        with pytest.raises(DeviceError):
            Hysteron(ec=0.0).apply(1.0)


class TestQuasiStatic:
    def test_initial_state_is_negative_saturation(self):
        assert _model().normalized_polarization == pytest.approx(-1.0)

    def test_saturate_positive(self):
        m = _model()
        m.saturate(1)
        assert m.normalized_polarization == pytest.approx(1.0)

    def test_saturate_rejects_bad_direction(self):
        with pytest.raises(DeviceError):
            _model().saturate(0)

    def test_polarization_bounded(self):
        m = _model()
        for v in np.linspace(-4, 4, 50):
            m.apply_voltage(float(v))
            assert -1.0 <= m.normalized_polarization <= 1.0

    def test_remanence_after_saturating_pulse(self):
        m = _model()
        m.apply_voltage(4.0)
        m.apply_voltage(0.0)
        assert m.polarization == pytest.approx(HZO_10NM.p_rem, rel=1e-6)

    def test_zero_field_changes_nothing(self):
        m = _model()
        m.apply_voltage(1.2)
        before = m.normalized_polarization
        m.apply_voltage(0.0)
        assert m.normalized_polarization == before

    def test_set_normalized_polarization_roundtrip(self):
        m = _model(n_domains=100)
        m.set_normalized_polarization(0.5)
        assert m.normalized_polarization == pytest.approx(0.5, abs=0.02)

    def test_set_normalized_rejects_out_of_range(self):
        with pytest.raises(DeviceError):
            _model().set_normalized_polarization(1.5)

    def test_rejects_zero_domains(self):
        with pytest.raises(DeviceError):
            PreisachModel(HZO_10NM, n_domains=0)


class TestPreisachProperties:
    """The two defining properties of any Preisach operator."""

    @given(
        peak=st.floats(min_value=1.2, max_value=2.5),
        minor=st.floats(min_value=0.3, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_wiping_out(self, peak, minor):
        """A larger subsequent extremum erases the memory of smaller ones."""
        m1 = _model(seed=5)
        m1.apply_voltage(peak)
        m1.apply_voltage(-minor)
        m1.apply_voltage(peak + 0.5)  # wipes out the minor excursion
        p1 = m1.normalized_polarization

        m2 = _model(seed=5)
        m2.apply_voltage(peak + 0.5)
        assert m2.normalized_polarization == pytest.approx(p1)

    @given(
        lo=st.floats(min_value=-1.0, max_value=-0.3),
        hi=st.floats(min_value=0.3, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_congruency(self, lo, hi):
        """Minor loops between the same reversal voltages have equal height
        regardless of history."""
        m1 = _model(seed=9)
        m1.apply_voltage(2.5)  # arrive from positive saturation
        m1.apply_voltage(lo)
        p1_bottom = m1.normalized_polarization
        m1.apply_voltage(hi)
        height1 = m1.normalized_polarization - p1_bottom

        m2 = _model(seed=9)
        m2.apply_voltage(-2.5)  # arrive from negative saturation
        m2.apply_voltage(hi)
        m2.apply_voltage(lo)
        p2_bottom = m2.normalized_polarization
        m2.apply_voltage(hi)
        height2 = m2.normalized_polarization - p2_bottom

        assert height1 == pytest.approx(height2, abs=1e-9)

    def test_return_point_memory(self):
        """Closing a minor loop returns exactly to the turning point."""
        m = _model(seed=3)
        m.apply_voltage(2.0)
        m.apply_voltage(-0.8)
        p_turn = m.normalized_polarization
        m.apply_voltage(0.5)
        m.apply_voltage(-0.8)
        assert m.normalized_polarization == pytest.approx(p_turn)


class TestPulseSwitching:
    def test_long_strong_pulse_fully_switches(self):
        m = _model()
        m.apply_pulse(SwitchingPulse(4.0, 1e-6), stochastic=False)
        assert m.normalized_polarization == pytest.approx(1.0)

    def test_short_weak_pulse_switches_little(self):
        m = _model()
        m.apply_pulse(SwitchingPulse(1.2, 1e-12), stochastic=False)
        assert m.normalized_polarization < -0.8

    def test_pulse_width_monotonicity(self):
        widths = [1e-9, 1e-8, 1e-7, 1e-6]
        results = []
        for w in widths:
            m = _model(seed=11)
            m.apply_pulse(SwitchingPulse(2.5, w), stochastic=False)
            results.append(m.normalized_polarization)
        assert results == sorted(results)

    def test_pulse_amplitude_monotonicity(self):
        amps = [1.5, 2.0, 3.0, 4.0]
        results = []
        for a in amps:
            m = _model(seed=11)
            m.apply_pulse(SwitchingPulse(a, 100e-9), stochastic=False)
            results.append(m.normalized_polarization)
        assert results == sorted(results)

    def test_stochastic_pulse_reproducible_with_seed(self):
        m1 = _model(seed=21)
        m2 = _model(seed=21)
        p1 = m1.apply_pulse(SwitchingPulse(2.2, 50e-9), stochastic=True)
        p2 = m2.apply_pulse(SwitchingPulse(2.2, 50e-9), stochastic=True)
        assert p1 == p2

    def test_zero_amplitude_is_noop(self):
        m = _model()
        before = m.normalized_polarization
        m.apply_pulse(SwitchingPulse(0.0, 1e-6))
        assert m.normalized_polarization == before

    def test_rejects_non_positive_width(self):
        with pytest.raises(DeviceError):
            SwitchingPulse(2.0, 0.0)

    def test_switched_charge_density(self):
        m = _model()
        q = m.switched_charge_density(-1.0, 1.0)
        assert q == pytest.approx(2.0 * HZO_10NM.p_rem)


class TestSaturationLoop:
    def test_loop_is_hysteretic(self):
        v, p = saturation_loop(HZO_10NM, 3.0, n_domains=256)
        n = len(v) // 2
        # Up branch and down branch differ at 0 V.
        i_up = np.argmin(np.abs(v[:n]))
        i_down = n + np.argmin(np.abs(v[n:]))
        assert p[i_down] > p[i_up]

    def test_loop_saturates_at_p_rem(self):
        v, p = saturation_loop(HZO_10NM, 4.0, n_domains=256)
        assert p.max() == pytest.approx(HZO_10NM.p_rem, rel=1e-6)
        assert p.min() == pytest.approx(-HZO_10NM.p_rem, rel=1e-6)

    def test_extracted_coercive_voltage_near_material_value(self):
        v, p = saturation_loop(HZO_10NM, 3.0, n_points=401, n_domains=512)
        vc = loop_coercive_voltage(v, p)
        assert vc == pytest.approx(HZO_10NM.v_coercive, rel=0.15)

    def test_rejects_bad_vmax(self):
        with pytest.raises(DeviceError):
            saturation_loop(HZO_10NM, -1.0)

    def test_rejects_too_few_points(self):
        with pytest.raises(DeviceError):
            saturation_loop(HZO_10NM, 3.0, n_points=2)

    def test_remanent_window(self):
        assert remanent_window(HZO_10NM) == pytest.approx(0.4)

    def test_coercive_extraction_rejects_mismatched_arrays(self):
        with pytest.raises(DeviceError):
            loop_coercive_voltage(np.array([1.0, 2.0]), np.array([1.0]))

    def test_coercive_extraction_rejects_no_crossing(self):
        v = np.linspace(-1, 1, 10)
        p = np.ones(10)
        with pytest.raises(DeviceError):
            loop_coercive_voltage(v, p)
