"""Tests for the ReRAM element."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.resistive import ReRAM, ReRAMParams, ReRAMState
from repro.errors import DeviceError


class TestParams:
    def test_default_ratio(self):
        p = ReRAMParams()
        assert p.on_off_ratio == pytest.approx(100.0)

    def test_rejects_hrs_below_lrs(self):
        with pytest.raises(DeviceError):
            ReRAMParams(r_lrs=1e6, r_hrs=1e3)

    def test_rejects_negative_resistance(self):
        with pytest.raises(DeviceError):
            ReRAMParams(r_lrs=-1.0)

    def test_rejects_sigma_out_of_range(self):
        with pytest.raises(DeviceError):
            ReRAMParams(sigma_rel=1.5)


class TestStateMachine:
    def test_powers_on_in_hrs(self):
        assert ReRAM().state is ReRAMState.HRS

    def test_resistance_follows_state(self):
        r = ReRAM()
        assert r.resistance == pytest.approx(r.params.r_hrs)
        r.set_state(ReRAMState.LRS)
        assert r.resistance == pytest.approx(r.params.r_lrs)

    def test_conductance_inverse(self):
        r = ReRAM()
        assert r.conductance() == pytest.approx(1.0 / r.resistance)


class TestWrite:
    def test_set_consumes_energy(self):
        r = ReRAM()
        e = r.write(ReRAMState.LRS)
        assert e > 0.0
        assert r.state is ReRAMState.LRS

    def test_rewrite_same_state_free(self):
        r = ReRAM()
        r.write(ReRAMState.LRS)
        assert r.write(ReRAMState.LRS) == 0.0

    def test_reset_costs_more_than_set(self):
        """RESET drives current through the low-resistance state."""
        r = ReRAM()
        e_set = r.write(ReRAMState.LRS)
        e_reset = r.write(ReRAMState.HRS)
        assert e_reset > e_set

    def test_write_energy_picojoule_scale(self):
        r = ReRAM()
        e = r.write(ReRAMState.LRS)
        assert 1e-16 < e < 1e-9


class TestVariation:
    def test_sampled_resistances_differ_across_devices(self):
        rng = np.random.default_rng(0)
        devices = [ReRAM(ReRAMParams(), rng=rng) for _ in range(20)]
        values = {d.resistance for d in devices}
        assert len(values) > 1

    def test_sampled_mean_near_nominal(self):
        rng = np.random.default_rng(1)
        p = ReRAMParams()
        devices = [ReRAM(p, rng=rng) for _ in range(400)]
        mean_hrs = np.mean([d.resistance for d in devices])
        assert mean_hrs == pytest.approx(p.r_hrs, rel=0.05)

    def test_zero_sigma_is_deterministic(self):
        rng = np.random.default_rng(2)
        p = ReRAMParams(sigma_rel=0.0)
        d = ReRAM(p, rng=rng)
        assert d.resistance == p.r_hrs
