"""Tests for the temperature scaling model."""

from __future__ import annotations

import pytest

from repro.devices.fefet import FeFETParams
from repro.devices.mosfet import MOSFET, nmos_45nm
from repro.devices.temperature import TemperatureModel
from repro.errors import DeviceError


class TestScalings:
    def test_reference_temperature_is_identity(self):
        tm = TemperatureModel()
        assert tm.vt_shift(tm.t_ref) == 0.0
        assert tm.kp_scale(tm.t_ref) == pytest.approx(1.0)
        assert tm.window_scale(tm.t_ref) == pytest.approx(1.0)

    def test_vt_decreases_when_hot(self):
        tm = TemperatureModel()
        assert tm.vt_shift(400.0) < 0.0

    def test_mobility_degrades_when_hot(self):
        tm = TemperatureModel()
        assert tm.kp_scale(400.0) < 1.0

    def test_window_shrinks_when_hot(self):
        tm = TemperatureModel()
        assert tm.window_scale(400.0) < 1.0

    def test_window_floor(self):
        tm = TemperatureModel(window_dt_rel=-0.1)
        assert tm.window_scale(5000.0) == pytest.approx(0.1)

    def test_rejects_non_positive_temperature(self):
        tm = TemperatureModel()
        with pytest.raises(DeviceError):
            tm.vt_shift(0.0)

    def test_rejects_bad_reference(self):
        with pytest.raises(DeviceError):
            TemperatureModel(t_ref=-1.0)


class TestDeviceRescaling:
    def test_mosfet_at_hot_corner(self):
        tm = TemperatureModel()
        hot = tm.mosfet_at(nmos_45nm(), 398.15)  # 125 C
        assert hot.vt0 < nmos_45nm().vt0
        assert hot.kp < nmos_45nm().kp

    def test_fefet_at_hot_corner(self):
        tm = TemperatureModel()
        base = FeFETParams()
        hot = tm.fefet_at(base, 398.15)
        assert hot.vt_mid < base.vt_mid
        assert hot.memory_window < base.memory_window

    def test_hot_mosfet_leaks_more(self):
        """Combined VT shift + EKV thermal voltage: leakage rises with T."""
        tm = TemperatureModel()
        cold = MOSFET(nmos_45nm(), temperature_k=300.0)
        hot_params = tm.mosfet_at(nmos_45nm(), 398.15)
        hot = MOSFET(hot_params, temperature_k=398.15)
        assert hot.off_current(0.9) > 10.0 * cold.off_current(0.9)

    def test_hot_mosfet_drives_less(self):
        tm = TemperatureModel()
        cold = MOSFET(nmos_45nm(), temperature_k=300.0)
        hot = MOSFET(tm.mosfet_at(nmos_45nm(), 398.15), temperature_k=398.15)
        assert hot.on_current(0.9) < cold.on_current(0.9)
