"""Tests for variation specs and samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.variability import (
    NOMINAL_VARIATION,
    NO_VARIATION,
    VariationSpec,
    pelgrom_sigma,
    sample_variation,
    sample_vt_offsets,
)
from repro.errors import DeviceError


class TestSpec:
    def test_no_variation_is_all_zero(self):
        assert NO_VARIATION.sigma_vt_fefet == 0.0
        assert NO_VARIATION.sa_offset_sigma == 0.0

    def test_nominal_matches_literature_order(self):
        assert 0.02 < NOMINAL_VARIATION.sigma_vt_fefet < 0.10

    def test_rejects_negative_sigma(self):
        with pytest.raises(DeviceError):
            VariationSpec(sigma_vt_fefet=-0.01)

    @given(factor=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_scaled_multiplies_every_sigma(self, factor):
        s = NOMINAL_VARIATION.scaled(factor)
        assert s.sigma_vt_fefet == pytest.approx(NOMINAL_VARIATION.sigma_vt_fefet * factor)
        assert s.sa_offset_sigma == pytest.approx(NOMINAL_VARIATION.sa_offset_sigma * factor)

    def test_scaled_rejects_negative(self):
        with pytest.raises(DeviceError):
            NOMINAL_VARIATION.scaled(-1.0)


class TestSamplers:
    def test_offsets_shape(self):
        rng = np.random.default_rng(0)
        offsets = sample_vt_offsets(NOMINAL_VARIATION, 100, rng)
        assert offsets.shape == (100,)

    def test_zero_sigma_gives_zeros(self):
        rng = np.random.default_rng(0)
        offsets = sample_vt_offsets(NO_VARIATION, 10, rng)
        assert np.all(offsets == 0.0)

    def test_offsets_std_matches_sigma(self):
        rng = np.random.default_rng(1)
        offsets = sample_vt_offsets(NOMINAL_VARIATION, 20000, rng)
        assert np.std(offsets) == pytest.approx(NOMINAL_VARIATION.sigma_vt_fefet, rel=0.05)

    def test_mosfet_kind_uses_mosfet_sigma(self):
        rng = np.random.default_rng(2)
        offsets = sample_vt_offsets(NOMINAL_VARIATION, 20000, rng, kind="mosfet")
        assert np.std(offsets) == pytest.approx(NOMINAL_VARIATION.sigma_vt_mosfet, rel=0.05)

    def test_rejects_unknown_kind(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DeviceError):
            sample_vt_offsets(NOMINAL_VARIATION, 5, rng, kind="finfet")

    def test_rejects_negative_count(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DeviceError):
            sample_vt_offsets(NOMINAL_VARIATION, -1, rng)

    def test_full_sample_fields(self):
        rng = np.random.default_rng(3)
        s = sample_variation(NOMINAL_VARIATION, n_fefets=4, n_mosfets=2, rng=rng)
        assert s.vt_offset_fefet.shape == (4,)
        assert s.vt_offset_mosfet.shape == (2,)
        assert s.window_scale > 0.0
        assert s.cap_scale > 0.0

    def test_full_sample_deterministic_under_seed(self):
        s1 = sample_variation(NOMINAL_VARIATION, 4, 2, np.random.default_rng(9))
        s2 = sample_variation(NOMINAL_VARIATION, 4, 2, np.random.default_rng(9))
        assert np.array_equal(s1.vt_offset_fefet, s2.vt_offset_fefet)
        assert s1.sa_offset == s2.sa_offset


class TestPelgrom:
    def test_sigma_scales_inverse_sqrt_area(self):
        s1 = pelgrom_sigma(2.5e-9, 90e-9, 30e-9)
        s2 = pelgrom_sigma(2.5e-9, 180e-9, 60e-9)
        assert s1 / s2 == pytest.approx(2.0)

    def test_rejects_zero_geometry(self):
        with pytest.raises(DeviceError):
            pelgrom_sigma(2.5e-9, 0.0, 30e-9)

    def test_literature_order_of_magnitude(self):
        """~2.5 mV*um Pelgrom coefficient on a 90x30 nm device -> tens of mV."""
        sigma = pelgrom_sigma(2.5e-9, 90e-9, 30e-9)
        assert 0.01 < sigma < 0.10
