"""Tests for the energy ledger, including additive-invariant properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import EnergyComponent, EnergyLedger
from repro.energy.power import leakage_energy, switching_energy
from repro.errors import ReproError

joules = st.floats(min_value=0.0, max_value=1e-9)
components = st.sampled_from([c for c in EnergyComponent])


class TestLedgerBasics:
    def test_empty_total_zero(self):
        assert EnergyLedger().total == 0.0

    def test_add_and_get(self):
        led = EnergyLedger()
        led.add(EnergyComponent.SEARCHLINE, 1e-15)
        assert led.get(EnergyComponent.SEARCHLINE) == pytest.approx(1e-15)
        assert led.get("sl") == pytest.approx(1e-15)

    def test_string_and_enum_keys_merge(self):
        led = EnergyLedger()
        led.add(EnergyComponent.SEARCHLINE, 1e-15)
        led.add("sl", 2e-15)
        assert led.total == pytest.approx(3e-15)

    def test_missing_component_zero(self):
        assert EnergyLedger().get("nothing") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            EnergyLedger().add("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ReproError):
            EnergyLedger().add("x", math.nan)

    def test_breakdown_sorted_descending(self):
        led = EnergyLedger({"a": 1.0, "b": 3.0, "c": 2.0})
        assert list(led.breakdown()) == ["b", "c", "a"]

    def test_fractions_sum_to_one(self):
        led = EnergyLedger({"a": 1.0, "b": 3.0})
        assert sum(led.fractions().values()) == pytest.approx(1.0)

    def test_fractions_empty_ledger(self):
        assert EnergyLedger().fractions() == {}

    def test_repr_contains_components(self):
        led = EnergyLedger({"sl": 1e-15})
        assert "sl" in repr(led)


class TestLedgerAlgebra:
    @given(a=joules, b=joules)
    @settings(max_examples=30)
    def test_addition_commutes(self, a, b):
        l1 = EnergyLedger({"x": a}) + EnergyLedger({"x": b})
        l2 = EnergyLedger({"x": b}) + EnergyLedger({"x": a})
        assert l1.total == pytest.approx(l2.total)

    @given(values=st.lists(joules, min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_sum_equals_manual_total(self, values):
        ledgers = [EnergyLedger({"e": v}) for v in values]
        assert EnergyLedger.sum(ledgers).total == pytest.approx(sum(values))

    @given(a=joules, factor=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=30)
    def test_scaling(self, a, factor):
        led = EnergyLedger({"x": a})
        assert led.scaled(factor).total == pytest.approx(a * factor)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ReproError):
            EnergyLedger().scaled(-1.0)

    def test_merge_mutates_target_only(self):
        a = EnergyLedger({"x": 1.0})
        b = EnergyLedger({"x": 2.0})
        a.merge(b)
        assert a.total == pytest.approx(3.0)
        assert b.total == pytest.approx(2.0)

    def test_add_operator_leaves_operands(self):
        a = EnergyLedger({"x": 1.0})
        b = EnergyLedger({"y": 2.0})
        c = a + b
        assert c.total == pytest.approx(3.0)
        assert a.total == pytest.approx(1.0)


class TestLedgerReadSurface:
    """The stable read API the observability layer and CLI consume."""

    def test_components_in_insertion_order(self):
        led = EnergyLedger()
        led.add("b", 1.0)
        led.add("a", 2.0)
        assert led.components() == ("b", "a")

    def test_as_dict_is_a_copy(self):
        led = EnergyLedger({"x": 1.0})
        d = led.as_dict()
        d["x"] = 99.0
        assert led.get("x") == 1.0

    def test_iter_yields_pairs(self):
        led = EnergyLedger({"a": 1.0, "b": 2.0})
        assert list(led) == [("a", 1.0), ("b", 2.0)]

    def test_len_counts_components(self):
        assert len(EnergyLedger()) == 0
        assert len(EnergyLedger({"a": 1.0, "b": 2.0})) == 2

    def test_fraction_of_component(self):
        led = EnergyLedger({"a": 1.0, "b": 3.0})
        assert led.fraction("b") == pytest.approx(0.75)
        assert led.fraction(EnergyComponent.SEARCHLINE) == 0.0

    def test_fraction_empty_ledger_zero(self):
        assert EnergyLedger().fraction("a") == 0.0

    def test_enum_keys_iterate_as_strings(self):
        led = EnergyLedger()
        led.add(EnergyComponent.SEARCHLINE, 1.0)
        assert led.components() == (EnergyComponent.SEARCHLINE.value,)


class TestPowerFormulas:
    def test_switching_full_swing(self):
        assert switching_energy(1e-15, 0.9) == pytest.approx(0.81e-15)

    def test_switching_partial_swing(self):
        assert switching_energy(1e-15, 0.5, 0.9) == pytest.approx(0.45e-15)

    def test_switching_rejects_negative(self):
        with pytest.raises(ReproError):
            switching_energy(-1e-15, 0.9)

    def test_leakage_product(self):
        assert leakage_energy(1e-9, 0.9, 1e-6) == pytest.approx(0.9e-15)

    def test_leakage_rejects_negative(self):
        with pytest.raises(ReproError):
            leakage_energy(1e-9, 0.9, -1.0)
