"""Protocol-conformance suite, parametrized over every registered cell.

Every cell in the registry must satisfy the estimator protocol through
:class:`CellEstimator`, and every design's array must satisfy it through
its own :class:`ArrayEstimator`: non-negative energies and areas,
write-cost consistency, pulldown monotonicity in the threshold offset,
and a gated action vocabulary.
"""

from __future__ import annotations

import pytest

from repro.core import all_designs, build_array
from repro.energy.estimator import ArrayEstimator, CellEstimator, EstimatorError
from repro.tcam import ArrayGeometry
from repro.tcam.cells import get_cell, list_cells
from repro.tcam.trit import Trit

TRITS = (Trit.ZERO, Trit.ONE, Trit.X)


@pytest.fixture(params=list_cells())
def cell(request):
    """Every registered cell technology."""
    return get_cell(request.param)


@pytest.fixture(params=[s.name for s in all_designs() if s.sensing != "nand"])
def array(request):
    """One live array per (non-NAND) registered design."""
    spec = next(s for s in all_designs() if s.name == request.param)
    return build_array(spec, ArrayGeometry(rows=4, cols=8))


class TestCellEstimatorConformance:
    def test_name_carries_technology(self, cell):
        est = CellEstimator(cell)
        assert est.name == f"cell:{cell.technology}"

    def test_actions_is_write(self, cell):
        assert CellEstimator(cell).actions() == ("write",)

    def test_area_non_negative_and_passthrough(self, cell):
        est = CellEstimator(cell)
        assert est.area_f2() == cell.area_f2
        assert est.area_f2() > 0.0

    def test_leakage_power_non_negative(self, cell):
        est = CellEstimator(cell)
        assert est.leakage_power(0.9) >= 0.0
        assert est.leakage_power(0.9) == cell.standby_leakage(0.9) * 0.9

    def test_write_energy_non_negative_all_transitions(self, cell):
        est = CellEstimator(cell)
        for old in TRITS:
            for new in TRITS:
                cost = est.write_cost(old, new)
                assert cost.energy >= 0.0
                assert cost.latency >= 0.0
                assert est.dynamic_energy("write", old=old, new=new) == cost.energy

    def test_same_trit_write_free_when_nonvolatile(self, cell):
        """NV cells skip redundant programs; volatile SRAM always burns."""
        est = CellEstimator(cell)
        for trit in TRITS:
            cost = est.write_cost(trit, trit)
            if cell.nonvolatile:
                assert cost.energy == 0.0
                assert cost.latency == 0.0
            else:
                assert cost.energy > 0.0

    def test_unknown_action_raises(self, cell):
        with pytest.raises(EstimatorError, match="no action"):
            CellEstimator(cell).dynamic_energy("frobnicate")

    def test_describe_lists_protocol_fields(self, cell):
        info = CellEstimator(cell).describe()
        assert info["technology"] == cell.technology
        assert info["actions"] == ["write"]
        assert info["area_f2"] > 0.0


class TestCellPhysicsConformance:
    """Electrical sanity every registered descriptor must satisfy."""

    def test_pulldown_monotone_in_vt_offset(self, cell):
        """Raising the device threshold can only weaken the pulldown."""
        v_ml = 0.5
        offsets = (-0.05, 0.0, 0.05, 0.1)
        currents = [cell.i_pulldown(v_ml, vt_offset=off) for off in offsets]
        for weaker, stronger in zip(currents[1:], currents):
            assert weaker <= stronger

    def test_pulldown_exceeds_leak(self, cell):
        """A mismatch must conduct more than the worst matching cell."""
        v_ml = 0.5
        assert cell.i_pulldown(v_ml) > cell.i_leak(v_ml) >= 0.0

    def test_bits_per_cell_at_least_one_binary_equivalent(self, cell):
        assert cell.bits_per_cell >= 1.0

    def test_match_accuracy_in_unit_interval(self, cell):
        assert 0.0 < cell.match_accuracy() <= 1.0


class TestArrayEstimatorConformance:
    def test_array_back_reference(self, array):
        assert isinstance(array.estimator, ArrayEstimator)
        assert array.estimator.array is array

    def test_actions_gated_by_sensing(self, array):
        actions = array.estimator.actions()
        if array.sensing == "precharge":
            assert "race" not in actions
            assert "ml_precharge" in actions and "sense" in actions
        else:
            assert actions == ("sl_toggle", "race", "encode", "write")

    def test_priced_actions_non_negative(self, array):
        est = array.estimator
        assert est.sl_toggle_energy() >= 0.0
        assert est.encode_energy() >= 0.0
        if array.sensing == "precharge":
            assert est.ml_precharge_energy(0.0) >= 0.0
            assert est.ml_dissipation_energy(0.0) >= 0.0
            assert est.sense_idle_energy() >= 0.0

    def test_area_is_cell_area_times_geometry(self, array):
        rows, cols = array.geometry.rows, array.geometry.cols
        assert array.estimator.area_f2() == rows * cols * array.cell.area_f2

    def test_leakage_power_scales_with_geometry(self, array):
        per_cell = array.cell.standby_leakage(array.vdd) * array.vdd
        total = array.estimator.leakage_power(array.vdd)
        assert total == pytest.approx(
            array.geometry.rows * array.geometry.cols * per_cell
        )

    def test_unknown_action_raises(self, array):
        with pytest.raises(EstimatorError, match="no action"):
            array.estimator.dynamic_energy("frobnicate")

    def test_out_of_mode_action_raises(self, array):
        est = array.estimator
        if array.sensing == "precharge":
            with pytest.raises(EstimatorError):
                est.dynamic_energy("race", i_total=1e-6)
        else:
            with pytest.raises(EstimatorError):
                est.dynamic_energy("ml_precharge", v_end=0.0)

    def test_dynamic_energy_matches_typed_methods(self, array):
        est = array.estimator
        assert est.dynamic_energy("sl_toggle") == est.sl_toggle_energy()
        assert est.dynamic_energy("sl_toggle", n=3) == 3 * est.sl_toggle_energy()
        assert est.dynamic_energy("encode") == est.encode_energy()
        assert (
            est.dynamic_energy("write", old=Trit.ZERO, new=Trit.ONE)
            == est.write_cost(Trit.ZERO, Trit.ONE).energy
        )
        if array.sensing == "precharge":
            assert est.dynamic_energy(
                "ml_precharge", v_end=0.1
            ) == est.ml_precharge_energy(0.1)
            assert est.dynamic_energy(
                "ml_dissipation", v_end=0.1, n=2
            ) == est.ml_dissipation_energy(0.1, 2)
            assert est.dynamic_energy("sense_idle", n=4) == est.sense_idle_energy(4)
            assert est.dynamic_energy("sense", v_end=0.05) == est.sense(0.05).energy
        else:
            assert (
                est.dynamic_energy("race", i_total=1e-6)
                == est.race(1e-6).energy
            )

    def test_describe_reports_sensing(self, array):
        info = array.estimator.describe()
        assert info["sensing"] == array.sensing
        assert info["technology"] == array.cell.technology
