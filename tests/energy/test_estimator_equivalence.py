"""Estimator-vs-legacy equivalence: the routing changed, the bits did not.

Two layers of evidence that moving the array's energy accounting onto
:class:`ArrayEstimator` is a pure refactor:

* **Expression equivalence** -- each typed pricing method returns the
  exact float the array's historical inline formula produced (same
  operand grouping, compared with ``==``, not ``approx``).
* **Ledger equivalence** -- a search on an array with the default
  estimator books the same ledger, bit for bit, as one with an
  explicitly injected pass-through estimator; and a deliberately
  perturbed estimator changes the ledger, proving every booking
  actually flows through the protocol (no dead routing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_designs, build_array
from repro.energy.estimator import ArrayEstimator
from repro.tcam import ArrayGeometry
from repro.tcam.array import TCAMArray
from repro.tcam.cells import get_cell
from repro.tcam.trit import Trit, random_word

DESIGNS = [s.name for s in all_designs() if s.sensing != "nand"]


def _workload(cols: int, rows: int, searches: int = 6):
    rng = np.random.default_rng(97531)
    words = [random_word(cols, rng, x_fraction=0.3) for _ in range(rows)]
    keys = [random_word(cols, rng) for _ in range(searches)]
    return words, keys


@pytest.fixture(params=DESIGNS)
def design_spec(request):
    return next(s for s in all_designs() if s.name == request.param)


class TestExpressionEquivalence:
    """Typed methods reproduce the legacy inline expressions bitwise."""

    def test_sl_toggle(self, design_spec):
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        assert est.sl_toggle_energy() == array.search_line.toggle_energy(
            array.cell.v_search
        )

    def test_ml_precharge_counts(self, design_spec):
        if design_spec.sensing != "precharge":
            pytest.skip("precharge-path expression")
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        for v_end in (0.0, 0.12, 0.4):
            single = array.precharge.restore_energy(array.c_ml, v_end)
            assert est.ml_precharge_energy(v_end) == single
            # The scaled form preserves the legacy grouping n * (...).
            assert est.ml_precharge_energy(v_end, 7) == 7 * single

    def test_ml_dissipation_counts(self, design_spec):
        if design_spec.sensing != "precharge":
            pytest.skip("precharge-path expression")
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        v_pre = array.precharge.target_voltage()
        for v_end in (0.0, 0.12, 0.4):
            assert est.ml_dissipation_energy(v_end) == 0.5 * array.c_ml * (
                v_pre**2 - v_end**2
            )
            assert est.ml_dissipation_energy(v_end, 5) == 5 * 0.5 * array.c_ml * (
                v_pre**2 - v_end**2
            )

    def test_sense_strobe_and_offset(self, design_spec):
        if design_spec.sensing != "precharge":
            pytest.skip("voltage-SA expression")
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        legacy = array.sense_amp.strobe(0.07)
        routed = est.sense(0.07)
        assert routed.energy == legacy.energy
        assert routed.is_match == legacy.is_match
        shifted = est.sense(0.07, offset=0.02)
        assert shifted.energy == array.sense_amp.strobe(0.07 - 0.02).energy

    def test_sense_idle(self, design_spec):
        if design_spec.sensing != "precharge":
            pytest.skip("voltage-SA expression")
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        assert est.sense_idle_energy(3) == 3 * array.sense_amp.c_internal * (
            array.vdd**2
        )

    def test_race_evaluation(self, design_spec):
        if design_spec.sensing != "current_race":
            pytest.skip("current-race expression")
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        legacy = array.race_amp.evaluate(array.c_ml, 3e-6)
        routed = est.race(3e-6)
        assert routed.energy == legacy.energy
        assert routed.is_match == legacy.is_match

    def test_encode(self, design_spec):
        array = build_array(design_spec, ArrayGeometry(4, 8))
        assert array.estimator.encode_energy() == array.encoder.energy_per_search

    def test_write_cost(self, design_spec):
        array = build_array(design_spec, ArrayGeometry(4, 8))
        est = array.estimator
        for old in (Trit.ZERO, Trit.ONE, Trit.X):
            for new in (Trit.ZERO, Trit.ONE, Trit.X):
                assert est.write_cost(old, new) == array.cell.write_cost(old, new)

    def test_leakage_power_grouping(self, design_spec):
        array = build_array(design_spec, ArrayGeometry(4, 8))
        rows, cols = array.geometry.rows, array.geometry.cols
        legacy = rows * cols * array.cell.standby_leakage(array.vdd) * array.vdd
        assert array.estimator.leakage_power(array.vdd) == legacy
        assert array.standby_power() == legacy


class TestLedgerEquivalence:
    """Whole-search ledgers are bit-identical through the protocol."""

    def test_injected_passthrough_estimator_is_identical(self, design_spec):
        geometry = ArrayGeometry(8, 16)
        words, keys = _workload(16, 8)
        default = build_array(design_spec, geometry)
        injected = build_array(design_spec, geometry)
        injected.estimator = ArrayEstimator(injected)
        default.load(words)
        injected.load(words)
        for key in keys:
            a = default.search(key)
            b = injected.search(key)
            assert a.energy.as_dict() == b.energy.as_dict()
            assert a.search_delay == b.search_delay
            assert np.array_equal(a.match_mask, b.match_mask)

    def test_constructor_injection_hook(self):
        captured = []

        def factory(array):
            est = ArrayEstimator(array)
            captured.append(est)
            return est

        array = TCAMArray(get_cell("fefet2t"), ArrayGeometry(4, 8), estimator=factory)
        assert array.estimator is captured[0]
        assert array.estimator.array is array

    def test_perturbed_estimator_changes_the_ledger(self, design_spec):
        """Every searchline joule flows through the protocol surface."""

        class Doubled(ArrayEstimator):
            def sl_toggle_energy(self) -> float:
                return 2.0 * super().sl_toggle_energy()

        geometry = ArrayGeometry(8, 16)
        words, keys = _workload(16, 8, searches=2)
        stock = build_array(design_spec, geometry)
        doubled = build_array(design_spec, geometry)
        doubled.estimator = Doubled(doubled)
        stock.load(words)
        doubled.load(words)
        out_stock = stock.search(keys[0])
        out_doubled = doubled.search(keys[0])
        assert out_doubled.energy.get("sl") == 2.0 * out_stock.energy.get("sl")

    def test_perturbed_write_estimator_changes_write_cost(self):
        from repro.tcam.cell import WriteCost

        class PriceyWrites(ArrayEstimator):
            def write_cost(self, old, new) -> WriteCost:
                base = super().write_cost(old, new)
                return WriteCost(energy=base.energy + 1e-12, latency=base.latency)

        rng = np.random.default_rng(5)
        word = random_word(8, rng)
        stock = TCAMArray(get_cell("fefet2t"), ArrayGeometry(4, 8))
        pricey = TCAMArray(
            get_cell("fefet2t"), ArrayGeometry(4, 8), estimator=PriceyWrites
        )
        e_stock = stock.write(0, word).energy.total
        e_pricey = pricey.write(0, word).energy.total
        assert e_pricey > e_stock
