"""Fault-campaign generators: nested plans and their statistical shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    GENERATOR_MODES,
    FaultCampaign,
    FaultKind,
    FaultPlan,
)

ROWS, COLS = 12, 10
N = ROWS * COLS


@pytest.fixture
def campaign() -> FaultCampaign:
    return FaultCampaign(ROWS, COLS)


def _cells(fm) -> set[tuple[int, int]]:
    return {(int(r), int(c)) for r, c in zip(*np.nonzero(fm.faulty_cell_mask()))}


class TestPlanStructure:
    @pytest.mark.parametrize("mode", GENERATOR_MODES)
    def test_order_is_a_full_permutation(self, campaign, rng, mode):
        wear = rng.integers(0, 5, size=(ROWS, COLS)) if mode == "wear" else None
        plan = campaign.draw(mode, rng, wear_counts=wear)
        assert isinstance(plan, FaultPlan)
        assert sorted(plan.order.tolist()) == list(range(N))
        assert plan.kinds.shape == (N,)
        assert plan.values.shape == (N,)

    def test_at_density_cell_counts(self, campaign, rng):
        plan = campaign.draw_random(rng)
        assert plan.at_density(0.0).is_empty()
        assert plan.at_density(1.0).n_faulty_cells() == N
        assert plan.at_density(0.1).n_faulty_cells() == round(0.1 * N)

    def test_at_density_validates(self, campaign, rng):
        plan = campaign.draw_random(rng)
        with pytest.raises(FaultError):
            plan.at_density(-0.01)
        with pytest.raises(FaultError):
            plan.at_density(1.5)

    def test_nested_subset_property(self, campaign, rng):
        """Lower densities are strict subsets: the monotonicity backbone."""
        plan = campaign.draw_random(rng)
        prev: set[tuple[int, int]] = set()
        for density in (0.0, 0.02, 0.05, 0.2, 0.7):
            cells = _cells(plan.at_density(density))
            assert prev <= cells
            prev = cells

    def test_same_seed_same_plan(self, campaign):
        a = campaign.draw_random(np.random.default_rng(99))
        b = campaign.draw_random(np.random.default_rng(99))
        assert np.array_equal(a.order, b.order)
        assert np.array_equal(a.kinds, b.kinds)
        assert np.array_equal(a.values, b.values)

    def test_kinds_respect_weights(self, rng):
        only_miss = FaultCampaign(ROWS, COLS, kind_weights={FaultKind.STUCK_MISS: 1.0})
        fm = only_miss.draw_random(rng).at_density(1.0)
        assert (fm.kind == int(FaultKind.STUCK_MISS)).all()

    def test_retention_values_use_vt_shift_scale(self, rng):
        camp = FaultCampaign(
            ROWS, COLS, kind_weights={FaultKind.RETENTION: 1.0}, vt_shift=0.25
        )
        fm = camp.draw_random(rng).at_density(1.0)
        assert (fm.value > 0.0).all()


class TestModesAndErrors:
    def test_clustered_plans_differ_from_random(self, campaign):
        random_plan = campaign.draw_random(np.random.default_rng(5))
        clustered_plan = campaign.draw_clustered(np.random.default_rng(5))
        assert not np.array_equal(random_plan.order, clustered_plan.order)

    def test_wear_orders_hot_cells_first(self, campaign, rng):
        wear = np.zeros((ROWS, COLS), dtype=np.int64)
        hot = 3 * COLS + 7
        wear.flat[hot] = 10**6
        plan = campaign.draw_wear(rng, wear)
        assert int(plan.order[0]) == hot

    def test_wear_requires_counts(self, campaign, rng):
        with pytest.raises(FaultError):
            campaign.draw("wear", rng)
        with pytest.raises(FaultError):
            campaign.draw_wear(rng, np.zeros((ROWS, COLS + 1)))
        with pytest.raises(FaultError):
            campaign.draw_wear(rng, np.full((ROWS, COLS), -1.0))

    def test_unknown_mode_rejected(self, campaign, rng):
        with pytest.raises(FaultError):
            campaign.draw("bogus", rng)

    def test_campaign_validation(self):
        with pytest.raises(FaultError):
            FaultCampaign(0, 4)
        with pytest.raises(FaultError):
            FaultCampaign(4, 4, vt_shift=-0.1)
        with pytest.raises(FaultError):
            FaultCampaign(4, 4, kind_weights={})
        with pytest.raises(FaultError):
            FaultCampaign(4, 4, kind_weights={FaultKind.STUCK_MATCH: -1.0})
        with pytest.raises(FaultError):
            FaultCampaign(4, 4, kind_weights={FaultKind.NONE: 1.0})
        with pytest.raises(FaultError):
            FaultCampaign(4, 4, n_clusters=0)


class TestRowLevelDecorators:
    def test_with_dead_rows_marks_requested_fraction(self, campaign, rng):
        fm = campaign.draw_random(rng).at_density(0.0)
        out = campaign.with_dead_rows(fm, 0.25, rng)
        assert int(np.count_nonzero(out.dead_rows)) == round(0.25 * ROWS)
        assert not fm.dead_rows.any()  # overlays copy, never mutate the input

    def test_with_sa_offsets_draws_nonzero_offsets(self, campaign, rng):
        fm = campaign.draw_random(rng).at_density(0.0)
        out = campaign.with_sa_offsets(fm, 0.05, rng)
        assert (out.sa_offset != 0.0).any()
        assert not fm.sa_offset.any()

    def test_decorator_validation(self, campaign, rng):
        fm = campaign.draw_random(rng).at_density(0.0)
        with pytest.raises(FaultError):
            campaign.with_dead_rows(fm, 1.5, rng)
        with pytest.raises(FaultError):
            campaign.with_sa_offsets(fm, -0.1, rng)
