"""End-to-end fault campaigns: determinism, monotonicity, observability."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis.faultcampaign import run_fault_campaign
from repro.errors import AnalysisError

CONFIG = dict(
    design="fefet2t",
    rows=12,
    cols=12,
    densities=(0.0, 0.05),
    mode="random",
    repair="spare-rows",
    n_spare=2,
    n_trials=2,
    n_keys=6,
    seed=424242,
)


class TestCampaignResults:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fault_campaign(**CONFIG, workers=0)

    def test_density_zero_point_is_clean(self, result):
        clean = result.points[0]
        assert clean.density == 0.0
        assert clean.false_matches == 0
        assert clean.false_misses == 0
        assert clean.energy_delta == 0.0
        assert clean.post_repair_yield == 1.0

    def test_error_counts_monotone_in_density(self, result):
        combined = [p.false_matches + p.false_misses for p in result.points]
        assert combined == sorted(combined)

    def test_rates_are_normalized(self, result):
        for p in result.points:
            assert 0.0 <= p.false_match_rate <= 1.0
            assert 0.0 <= p.false_miss_rate <= 1.0
            assert 0.0 <= p.post_repair_yield <= 1.0

    def test_to_dict_round_trips_through_json(self, result):
        d = result.to_dict()
        assert d["design"] == "fefet2t"
        assert len(d["points"]) == len(CONFIG["densities"])
        json.dumps(d)

    def test_serial_matches_two_workers_bit_identically(self, result):
        parallel = run_fault_campaign(**CONFIG, workers=2)
        assert result.to_dict() == parallel.to_dict()

    def test_seed_reproducibility(self, result):
        again = run_fault_campaign(**CONFIG, workers=0)
        assert result.to_dict() == again.to_dict()

    def test_kernel_engine_bit_identical(self, result):
        """use_kernel routes searches through the compiled batch engine;
        every count and joule must be unchanged, serial or parallel."""
        kernel = run_fault_campaign(**CONFIG, workers=0, use_kernel=True)
        assert result.to_dict() == kernel.to_dict()
        kernel_par = run_fault_campaign(**CONFIG, workers=2, use_kernel=True)
        assert result.to_dict() == kernel_par.to_dict()


class TestCampaignModes:
    @pytest.mark.parametrize("mode", ["clustered", "wear"])
    def test_other_generator_modes_run(self, mode):
        result = run_fault_campaign(
            **{**CONFIG, "mode": mode, "densities": (0.05,), "n_trials": 1}
        )
        (point,) = result.points
        assert point.n_faulty_cells > 0
        assert point.total_keys > 0

    @pytest.mark.parametrize("repair", ["none", "mask"])
    def test_other_repair_policies_run(self, repair):
        result = run_fault_campaign(
            **{**CONFIG, "repair": repair, "densities": (0.05,), "n_trials": 1}
        )
        (point,) = result.points
        assert point.repair_energy >= 0.0


class TestValidationAndObservability:
    @pytest.mark.parametrize(
        "bad",
        [
            {"design": "not-a-design"},
            {"design": "fefet_nand"},  # serial NAND array has no fault hooks
            {"mode": "bogus"},
            {"repair": "solder"},
            {"densities": (0.5, 2.0)},
            {"n_trials": 0},
            {"n_keys": 0},
            {"rows": 2, "n_spare": 4},
        ],
    )
    def test_bad_arguments_rejected(self, bad):
        with pytest.raises(AnalysisError):
            run_fault_campaign(**{**CONFIG, **bad})

    def test_campaign_is_traced_and_counted(self):
        with obs.observe() as sess:
            run_fault_campaign(
                **{**CONFIG, "densities": (0.05,), "n_trials": 2}, workers=0
            )
        names = [span.name for span in sess.spans]
        assert "faults.campaign" in names
        snapshot = sess.metrics.snapshot()
        assert snapshot["faults.trials"] == 2.0
        assert not obs.is_enabled()
