"""Unit tests for the FaultMap value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import FaultKind, FaultMap
from repro.tcam.trit import Trit


class TestConstructionAndValidation:
    def test_fresh_map_is_empty(self):
        fm = FaultMap(4, 8)
        assert fm.is_empty()
        assert fm.n_faulty_cells() == 0
        assert not fm.faulty_rows().any()

    @pytest.mark.parametrize("rows,cols", [(0, 4), (4, 0), (-1, 4)])
    def test_degenerate_shape_rejected(self, rows, cols):
        with pytest.raises(FaultError):
            FaultMap(rows, cols)

    @pytest.mark.parametrize("row,col", [(-1, 0), (4, 0), (0, -1), (0, 8)])
    def test_cell_bounds_checked(self, row, col):
        fm = FaultMap(4, 8)
        with pytest.raises(FaultError):
            fm.set_cell(row, col, FaultKind.STUCK_MATCH)

    def test_retention_value_must_be_finite(self):
        fm = FaultMap(4, 8)
        with pytest.raises(FaultError):
            fm.set_cell(0, 0, FaultKind.RETENTION, value=float("nan"))

    def test_stuck_trit_value_must_be_a_trit_code(self):
        fm = FaultMap(4, 8)
        with pytest.raises(FaultError):
            fm.set_cell(0, 0, FaultKind.STUCK_TRIT, value=7)
        fm.set_cell(0, 0, FaultKind.STUCK_TRIT, value=int(Trit.X))
        assert fm.value[0, 0] == float(int(Trit.X))

    def test_non_valued_kinds_clear_value(self):
        fm = FaultMap(4, 8)
        fm.set_cell(1, 1, FaultKind.STUCK_MATCH, value=3.0)
        assert fm.value[1, 1] == 0.0

    def test_set_cell_none_heals(self):
        fm = FaultMap(4, 8)
        fm.set_cell(2, 3, FaultKind.STUCK_MISS)
        fm.set_cell(2, 3, FaultKind.NONE)
        assert fm.is_empty()

    def test_row_level_setters_bounds_and_finiteness(self):
        fm = FaultMap(4, 8)
        with pytest.raises(FaultError):
            fm.set_dead_row(4)
        with pytest.raises(FaultError):
            fm.set_sa_offset(0, float("inf"))


class TestVersionCounter:
    def test_every_mutation_bumps_version(self):
        fm = FaultMap(4, 8)
        v = fm.version
        fm.set_cell(0, 0, FaultKind.STUCK_MATCH)
        fm.set_dead_row(1)
        fm.set_sa_offset(2, 0.05)
        fm.merge(FaultMap(4, 8))
        assert fm.version == v + 4

    def test_copy_is_independent(self):
        fm = FaultMap(4, 8)
        fm.set_cell(0, 0, FaultKind.STUCK_MISS)
        dup = fm.copy()
        dup.set_cell(1, 1, FaultKind.STUCK_MATCH)
        assert fm.kind[1, 1] == int(FaultKind.NONE)
        assert dup.kind[0, 0] == int(FaultKind.STUCK_MISS)


class TestQueries:
    def test_faulty_rows_covers_all_fault_levels(self):
        fm = FaultMap(5, 4)
        fm.set_cell(0, 2, FaultKind.RETENTION, value=0.3)
        fm.set_dead_row(2)
        fm.set_sa_offset(4, -0.1)
        assert list(np.flatnonzero(fm.faulty_rows())) == [0, 2, 4]

    def test_summary_census(self):
        fm = FaultMap(4, 4)
        fm.set_cell(0, 0, FaultKind.STUCK_MATCH)
        fm.set_cell(0, 1, FaultKind.STUCK_MATCH)
        fm.set_cell(1, 0, FaultKind.RETENTION, value=0.2)
        fm.set_dead_row(3)
        s = fm.summary()
        assert s["stuck_match"] == 2
        assert s["retention"] == 1
        assert s["stuck_miss"] == 0
        assert s["dead_rows"] == 1

    def test_effective_stored_freezes_only_stuck_trits(self):
        fm = FaultMap(2, 3)
        fm.set_cell(0, 1, FaultKind.STUCK_TRIT, value=int(Trit.X))
        fm.set_cell(1, 0, FaultKind.RETENTION, value=0.5)
        stored = np.zeros((2, 3), dtype=np.int8)
        eff = fm.effective_stored(stored)
        assert eff[0, 1] == int(Trit.X)
        assert eff[1, 0] == 0  # retention damage is electrical, not logical
        assert stored[0, 1] == 0  # input untouched

    def test_effective_stored_shape_checked(self):
        fm = FaultMap(2, 3)
        with pytest.raises(FaultError):
            fm.effective_stored(np.zeros((3, 2), dtype=np.int8))


class TestMerge:
    def test_merge_overlays_and_other_wins(self):
        a = FaultMap(3, 3)
        a.set_cell(0, 0, FaultKind.STUCK_MATCH)
        b = FaultMap(3, 3)
        b.set_cell(0, 0, FaultKind.STUCK_MISS)
        b.set_dead_row(1)
        b.set_sa_offset(2, 0.07)
        a.merge(b)
        assert a.kind[0, 0] == int(FaultKind.STUCK_MISS)
        assert a.dead_rows[1]
        assert a.sa_offset[2] == 0.07

    def test_merge_shape_checked(self):
        with pytest.raises(FaultError):
            FaultMap(3, 3).merge(FaultMap(3, 4))


class TestSplits:
    def test_split_cols_partitions_cell_faults(self):
        fm = FaultMap(4, 10)
        fm.set_cell(1, 2, FaultKind.STUCK_MATCH)
        fm.set_cell(1, 7, FaultKind.RETENTION, value=0.4)
        fm.set_dead_row(0)
        fm.set_sa_offset(3, 0.1)
        left, right = fm.split_cols([4, 6])
        assert (left.rows, left.cols) == (4, 4)
        assert (right.rows, right.cols) == (4, 6)
        assert left.kind[1, 2] == int(FaultKind.STUCK_MATCH)
        assert right.kind[1, 3] == int(FaultKind.RETENTION)
        assert right.value[1, 3] == 0.4
        # Row-level faults replicate into every segment.
        for seg in (left, right):
            assert seg.dead_rows[0]
            assert seg.sa_offset[3] == 0.1

    def test_split_cols_validation(self):
        fm = FaultMap(4, 10)
        with pytest.raises(FaultError):
            fm.split_cols([4, 5])
        with pytest.raises(FaultError):
            fm.split_cols([10, 0])

    def test_split_rows_partitions_everything(self):
        fm = FaultMap(6, 4)
        fm.set_cell(0, 1, FaultKind.STUCK_MISS)
        fm.set_cell(4, 2, FaultKind.STUCK_TRIT, value=1)
        fm.set_dead_row(5)
        top, bottom = fm.split_rows(3)
        assert top.kind[0, 1] == int(FaultKind.STUCK_MISS)
        assert bottom.kind[1, 2] == int(FaultKind.STUCK_TRIT)
        assert bottom.value[1, 2] == 1.0
        assert bottom.dead_rows[2]
        assert not top.dead_rows.any()

    def test_split_rows_requires_divisibility(self):
        with pytest.raises(FaultError):
            FaultMap(6, 4).split_rows(4)
