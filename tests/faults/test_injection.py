"""Fault injection through the search path.

Two families of guarantees:

* **Fault-free equivalence** -- an attached but *empty* fault map must
  be a bit-for-bit no-op at array, segmented-bank, hierarchical-bank
  and chip level (same masks, same ledger floats, same delays).  Every
  comparison builds *fresh* instances per run: search-line toggle
  energy depends on drive history, so reusing one object would diverge
  for reasons unrelated to faults.
* **Damage locality and direction** -- a non-empty map may only change
  verdicts on rows it covers, and each fault kind pushes its row's
  decision the way the electrical model says it must.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import build_array, get_design
from repro.errors import TCAMError
from repro.faults import FaultKind, FaultMap
from repro.tcam import ArrayGeometry, TCAMArray, TCAMChip
from repro.tcam.bank import HierarchicalBank, SegmentedBank
from repro.tcam.cells import FeFET2TCell
from repro.tcam.trit import TernaryWord, Trit, random_word

ROWS, COLS = 8, 12


def _words(seed=3, rows=ROWS, cols=COLS, x_fraction=0.2):
    rng = np.random.default_rng(seed)
    return [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]


def _keys(seed=17, n=6, cols=COLS):
    rng = np.random.default_rng(seed)
    return [random_word(cols, rng) for _ in range(n)]


def _fresh_array(words, design="fefet2t"):
    array = build_array(get_design(design), ArrayGeometry(len(words), COLS))
    array.load(words)
    return array


def _outcome_tuple(out):
    return (
        out.match_mask.tolist(),
        out.first_match,
        out.energy.as_dict(),
        out.search_delay,
        out.cycle_time,
    )


class TestEmptyMapEquivalence:
    @pytest.mark.parametrize("design", ["fefet2t", "fefet_cr", "cmos16t"])
    def test_array_scalar_and_batch(self, design):
        words, keys = _words(), _keys()
        golden = _fresh_array(words, design).search_batch(keys)
        arr = _fresh_array(words, design)
        arr.attach_faults(FaultMap(ROWS, COLS))
        assert arr.faults is not None
        faulted = arr.search_batch(keys)
        for g, f in zip(golden, faulted):
            assert _outcome_tuple(g) == _outcome_tuple(f)

    def test_segmented_bank(self):
        words, keys = _words(cols=16), _keys(cols=16)

        def bank():
            b = SegmentedBank(FeFET2TCell(), ArrayGeometry(ROWS, 16), probe_cols=4)
            b.load(words)
            return b

        golden = bank().search_batch(keys)
        faulted_bank = bank()
        faulted_bank.attach_faults(FaultMap(ROWS, 16))
        for g, f in zip(golden, faulted_bank.search_batch(keys)):
            assert _outcome_tuple(g) == _outcome_tuple(f)

    def test_hierarchical_bank(self):
        words, keys = _words(cols=16), _keys(cols=16)

        def bank():
            b = HierarchicalBank(
                FeFET2TCell(), ArrayGeometry(ROWS, 16), segment_cols=[4, 4, 8]
            )
            b.load(words)
            return b

        golden = bank().search_batch(keys)
        faulted_bank = bank()
        faulted_bank.attach_faults(FaultMap(ROWS, 16))
        for g, f in zip(golden, faulted_bank.search_batch(keys)):
            assert _outcome_tuple(g) == _outcome_tuple(f)

    def test_chip(self):
        words, keys = _words(rows=2 * ROWS), _keys()

        def chip():
            c = TCAMChip(
                lambda: TCAMArray(FeFET2TCell(), ArrayGeometry(ROWS, COLS)), n_banks=2
            )
            c.load(words)
            return c

        probes = [(k, b) for k in keys for b in (0, 1)]
        golden_chip = chip()  # one instance: SL energy depends on drive history
        golden = [golden_chip.search(k, bank=b) for k, b in probes]
        faulted = chip()
        faulted.attach_faults(FaultMap(2 * ROWS, COLS))
        for g, (k, b) in zip(golden, probes):
            f = faulted.search(k, bank=b)
            assert np.array_equal(g.match_mask, f.match_mask)
            assert g.first_match == f.first_match
            assert g.energy.as_dict() == f.energy.as_dict()

    def test_detach_restores_golden_path(self):
        words, keys = _words(), _keys(n=1)
        golden = _fresh_array(words).search(keys[0])
        arr = _fresh_array(words)
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 0, FaultKind.STUCK_MISS)
        arr.attach_faults(fm)
        arr.detach_faults()
        assert arr.faults is None
        assert _outcome_tuple(golden) == _outcome_tuple(arr.search(keys[0]))


def _uniform_words(code, rows=ROWS, cols=COLS):
    return [TernaryWord(np.full(cols, code, dtype=np.int8)) for _ in range(rows)]


def _key_with(code, at, base=0, cols=COLS):
    codes = np.full(cols, base, dtype=np.int8)
    codes[at] = code
    return TernaryWord(codes)


@pytest.mark.parametrize("design", ["fefet2t", "fefet_cr"])
class TestFaultKindsFlipDecisions:
    """Each kind, on both sensing styles, moves its row the right way."""

    def _array(self, design):
        return _fresh_array(_uniform_words(0), design)

    def test_stuck_match_hides_a_mismatch(self, design):
        key = _key_with(1, at=3)  # one mismatching column
        arr = self._array(design)
        assert not arr.search(key).match_mask[0]
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 3, FaultKind.STUCK_MATCH)
        arr2 = self._array(design)
        arr2.attach_faults(fm)
        out = arr2.search(key)
        assert out.match_mask[0]  # false match
        assert not out.match_mask[1:].any()

    def test_stuck_miss_kills_a_true_match(self, design):
        key = _key_with(0, at=0)  # exact match everywhere
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 5, FaultKind.STUCK_MISS)
        arr = self._array(design)
        arr.attach_faults(fm)
        out = arr.search(key)
        assert not out.match_mask[0]  # false miss
        assert out.match_mask[1:].all()

    def test_stuck_trit_serves_the_frozen_value(self, design):
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 2, FaultKind.STUCK_TRIT, value=1)
        arr = self._array(design)
        arr.attach_faults(fm)
        assert not arr.search(_key_with(0, at=0)).match_mask[0]
        assert arr.search(_key_with(1, at=2)).match_mask[0]

    def test_stuck_trit_frozen_at_x_matches_both(self, design):
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 2, FaultKind.STUCK_TRIT, value=int(Trit.X))
        arr = self._array(design)
        arr.attach_faults(fm)
        assert arr.search(_key_with(0, at=0)).match_mask[0]
        assert arr.search(_key_with(1, at=2)).match_mask[0]

    def test_retention_shift_weakens_the_pulldown(self, design):
        key = _key_with(1, at=3)
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 3, FaultKind.RETENTION, value=5.0)  # devastating Vt shift
        arr = self._array(design)
        arr.attach_faults(fm)
        out = arr.search(key)
        assert out.match_mask[0]  # pull-down too weak to discharge the ML
        assert not out.match_mask[1:].any()

    def test_dead_row_never_matches(self, design):
        key = _key_with(0, at=0)
        fm = FaultMap(ROWS, COLS)
        fm.set_dead_row(4)
        arr = self._array(design)
        arr.attach_faults(fm)
        out = arr.search(key)
        assert not out.match_mask[4]
        assert out.match_mask[0]

    def test_sa_offset_flips_a_marginal_decision(self, design):
        key = _key_with(0, at=0)  # every row matches
        fm = FaultMap(ROWS, COLS)
        fm.set_sa_offset(2, 10.0)  # offset far beyond any sensible margin
        arr = self._array(design)
        arr.attach_faults(fm)
        out = arr.search(key)
        assert not out.match_mask[2]
        assert out.match_mask[0]


class TestDamageLocality:
    def test_diffs_confined_to_covered_rows(self):
        from repro.faults import FaultCampaign

        words, keys = _words(x_fraction=0.1), _keys(n=8)
        rng = np.random.default_rng(11)
        fm = FaultCampaign(ROWS, COLS).draw_random(rng).at_density(0.1)
        covered = set(np.flatnonzero(fm.faulty_rows()).tolist())
        golden = _fresh_array(words).search_batch(keys)
        arr = _fresh_array(words)
        arr.attach_faults(fm)
        for g, f in zip(golden, arr.search_batch(keys)):
            diff = set(np.flatnonzero(g.match_mask != f.match_mask).tolist())
            assert diff <= covered

    def test_batch_equals_scalar_loop(self):
        words, keys = _words(), _keys(n=5)
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(1, 4, FaultKind.STUCK_MISS)
        fm.set_cell(6, 0, FaultKind.RETENTION, value=0.4)
        batch_arr = _fresh_array(words)
        batch_arr.attach_faults(fm.copy())
        scalar_arr = _fresh_array(words)
        scalar_arr.attach_faults(fm.copy())
        batched = batch_arr.search_batch(keys)
        for key, b in zip(keys, batched):
            assert _outcome_tuple(scalar_arr.search(key)) == _outcome_tuple(b)

    def test_map_mutation_invalidates_cached_trajectories(self):
        words = _uniform_words(0)
        key = _key_with(1, at=3)
        arr = _fresh_array(words)
        fm = FaultMap(ROWS, COLS)
        arr.attach_faults(fm)
        assert not arr.search(key).match_mask[0]
        fm.set_cell(0, 3, FaultKind.STUCK_MATCH)  # mutate after a search
        assert arr.search(key).match_mask[0]
        fm.set_cell(0, 3, FaultKind.NONE)
        assert not arr.search(key).match_mask[0]

    def test_attach_shape_checked(self):
        arr = _fresh_array(_words())
        with pytest.raises(TCAMError):
            arr.attach_faults(FaultMap(ROWS + 1, COLS))

    def test_nearest_match_refuses_active_faults(self):
        arr = _fresh_array(_words())
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 0, FaultKind.STUCK_MATCH)
        arr.attach_faults(fm)
        with pytest.raises(TCAMError):
            arr.nearest_match(_keys(n=1)[0])
        # An attached-but-empty map is not active fault injection.
        arr.attach_faults(FaultMap(ROWS, COLS))
        arr.nearest_match(_keys(n=1)[0])


class TestObservabilityWithFaults:
    def test_span_sum_equals_ledger_and_metrics_count(self):
        words, keys = _words(), _keys(n=4)
        arr = _fresh_array(words)
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 3, FaultKind.RETENTION, value=0.4)
        fm.set_sa_offset(5, 0.05)
        arr.attach_faults(fm)
        with obs.observe() as sess:
            out = arr.search(keys[0])
        (root,) = sess.spans
        assert root.name == "array.search"
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total
        assert sess.metrics.snapshot()["faults.searches"] == 1.0
        assert not obs.is_enabled()
