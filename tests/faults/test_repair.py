"""Repair policies: spare-row remapping and don't-care masking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.energy.accounting import EnergyComponent
from repro.errors import FaultError
from repro.faults import (
    FaultKind,
    FaultMap,
    MaskPolicy,
    NoRepairPolicy,
    SpareRowPolicy,
    get_policy,
)
from repro.tcam import ArrayGeometry
from repro.tcam.trit import Trit, random_word

ROWS, COLS, N_SPARE = 8, 12, 2
DATA_ROWS = ROWS - N_SPARE


def _loaded_array(seed=5):
    """Content in the first DATA_ROWS rows; the bottom N_SPARE start empty."""
    rng = np.random.default_rng(seed)
    words = [random_word(COLS, rng, x_fraction=0.2) for _ in range(DATA_ROWS)]
    array = build_array(get_design("fefet2t"), ArrayGeometry(ROWS, COLS))
    array.load(words)
    return array, words


class TestSpareRowPolicy:
    def test_relocates_content_and_books_repair_energy(self):
        array, words = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(1, 4, FaultKind.STUCK_MISS)
        report = SpareRowPolicy(N_SPARE).repair(array, fm)

        assert report.policy == "spare-rows"
        assert report.repaired_rows == (1,)
        assert report.unrepaired_rows == ()
        spare = report.row_map[1]
        assert spare >= DATA_ROWS
        assert not array.valid_mask()[1]
        assert array.valid_mask()[spare]
        assert np.array_equal(array.word_at(spare).as_array(), words[1].as_array())
        assert report.energy.total > 0.0
        assert report.energy.as_dict() == {
            EnergyComponent.REPAIR.value: report.energy.total
        }
        assert report.area_overhead == N_SPARE / ROWS

    def test_repaired_lookup_matches_at_the_spare(self):
        array, words = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(1, 4, FaultKind.STUCK_MISS)
        array.attach_faults(fm)
        report = SpareRowPolicy(N_SPARE).repair(array, fm)
        spare = report.row_map[1]
        key = words[1]  # reuse the stored word (X cols undriven) as the probe
        out = array.search(key)
        assert out.match_mask[spare]
        assert not out.match_mask[1]

    def test_faulty_or_occupied_spares_are_skipped(self):
        array, _ = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 0, FaultKind.STUCK_MATCH)
        fm.set_cell(1, 1, FaultKind.STUCK_MATCH)
        fm.set_dead_row(DATA_ROWS)  # first spare is itself broken
        report = SpareRowPolicy(N_SPARE).repair(array, fm)
        assert report.repaired_rows == (0,)  # only one healthy spare left
        assert report.unrepaired_rows == (1,)
        assert report.row_map[0] == DATA_ROWS + 1

    def test_broken_spares_not_counted_as_broken_data(self):
        array, _ = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_sa_offset(ROWS - 1, 0.2)  # fault inside the (empty) spare region
        report = SpareRowPolicy(N_SPARE).repair(array, fm)
        assert report.repaired_rows == ()
        assert report.unrepaired_rows == ()

    def test_validation(self):
        array, _ = _loaded_array()
        with pytest.raises(FaultError):
            SpareRowPolicy(-1)
        with pytest.raises(FaultError):
            SpareRowPolicy(ROWS + 1).repair(array, FaultMap(ROWS, COLS))
        with pytest.raises(FaultError):
            SpareRowPolicy(N_SPARE).repair(array, FaultMap(ROWS + 1, COLS))


class TestMaskPolicy:
    def test_masks_maskable_kinds_with_x(self):
        array, words = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 2, FaultKind.STUCK_MATCH)
        fm.set_cell(0, 5, FaultKind.RETENTION, value=0.3)
        fm.set_cell(2, 1, FaultKind.STUCK_TRIT, value=int(Trit.X))
        report = MaskPolicy().repair(array, fm)
        assert report.policy == "mask"
        assert set(report.repaired_rows) == {0, 2}
        assert report.masked_cells == 3
        assert report.row_map == {}
        assert report.area_overhead == 0.0
        assert report.energy.total > 0.0
        codes = array.word_at(0).as_array()
        assert codes[2] == int(Trit.X) and codes[5] == int(Trit.X)
        assert array.word_at(2).as_array()[1] == int(Trit.X)

    def test_unmaskable_kinds_stay_unrepaired(self):
        array, _ = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 2, FaultKind.STUCK_MISS)  # shorted path: X can't mimic it
        fm.set_cell(1, 3, FaultKind.STUCK_TRIT, value=0)  # frozen 0 is not X
        fm.set_cell(2, 4, FaultKind.STUCK_MATCH)
        fm.set_dead_row(2)  # row-level damage trumps maskable cells
        fm.set_cell(3, 0, FaultKind.STUCK_MATCH)
        fm.set_sa_offset(3, 0.1)
        report = MaskPolicy().repair(array, fm)
        assert report.repaired_rows == ()
        assert set(report.unrepaired_rows) == {0, 1, 2, 3}
        assert report.masked_cells == 0

    def test_mask_realigns_hardware_with_oracle(self):
        """After masking, the stuck-open column wildcards legitimately."""
        array, words = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 2, FaultKind.STUCK_MATCH)
        array.attach_faults(fm)
        MaskPolicy().repair(array, fm)
        out = array.search(words[0])
        assert out.match_mask[0]


class TestNoRepairAndFactory:
    def test_none_reports_without_touching_the_array(self):
        array, words = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(1, 1, FaultKind.STUCK_MISS)
        report = NoRepairPolicy().repair(array, fm)
        assert report.policy == "none"
        assert report.repaired_rows == ()
        assert report.unrepaired_rows == (1,)
        assert report.energy.total == 0.0
        assert np.array_equal(array.word_at(1).as_array(), words[1].as_array())

    def test_only_valid_rows_count_as_broken(self):
        array, _ = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(DATA_ROWS, 0, FaultKind.STUCK_MISS)  # empty row
        report = NoRepairPolicy().repair(array, fm)
        assert report.unrepaired_rows == ()

    def test_factory(self):
        assert isinstance(get_policy("none"), NoRepairPolicy)
        assert get_policy("spare-rows", n_spare=3).n_spare == 3
        assert isinstance(get_policy("mask"), MaskPolicy)
        with pytest.raises(FaultError):
            get_policy("solder")

    def test_report_to_dict_shape(self):
        array, _ = _loaded_array()
        fm = FaultMap(ROWS, COLS)
        fm.set_cell(0, 0, FaultKind.STUCK_MISS)
        d = SpareRowPolicy(N_SPARE).repair(array, fm).to_dict()
        assert set(d) == {
            "policy", "repaired_rows", "unrepaired_rows", "masked_cells",
            "row_map", "repair_energy", "area_overhead",
        }
        import json

        json.dumps(d)
