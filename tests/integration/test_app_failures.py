"""Application-level failure injection.

Device failures must surface as the right *application* misbehaviour:
a retention-dead row in a router black-holes into a phantom route, a
disturbed cell weakens toward don't-care and over-matches, and an
offset-heavy sense amplifier breaks LPM entirely.  These tests pin the
failure propagation end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.senseamp import VoltageSenseAmp
from repro.core import build_array, get_design
from repro.tcam import ArrayGeometry, TCAMArray, TernaryWord, Trit
from repro.tcam.cells import FeFET2TCell
from repro.tcam.trit import word_from_int
from repro.workloads.iproute import synthetic_routing_table, trace_addresses


def _router(rng, rows=64):
    table = synthetic_routing_table(40, rng)
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows, 32))
    table.deploy(array)
    return table, array


class TestRetentionLossInRouter:
    def test_dead_row_becomes_phantom_default_route(self):
        """A row whose polarization collapsed to all-X matches every
        address; if it sits above the true route, lookups return it."""
        rng = np.random.default_rng(71)
        table, array = _router(rng)
        # Kill row 0 (the longest prefix, highest priority).
        array.write(0, TernaryWord([Trit.X] * 32))
        hits = 0
        for address in trace_addresses(table, 30, rng):
            outcome = array.search(word_from_int(address, 32))
            hits += outcome.first_match == 0
        assert hits == 30  # the phantom row wins every lookup

    def test_invalidated_row_fails_safe(self):
        """Invalidate (instead of leaving a dead-X row) and the router
        falls back to correct shorter prefixes."""
        rng = np.random.default_rng(72)
        table, array = _router(rng)
        array.invalidate(0)
        killed = table.routes[0]
        for address in trace_addresses(table, 30, rng):
            route, outcome = table.lookup_tcam(array, address)
            if route is not None:
                assert route is not killed
            assert outcome.first_match != 0


class TestSenseAmpFailuresInRouter:
    def test_huge_offset_black_holes_all_lookups(self):
        rng = np.random.default_rng(73)
        table = synthetic_routing_table(30, rng)
        array = TCAMArray(
            FeFET2TCell(),
            ArrayGeometry(64, 32),
            sense_amp=VoltageSenseAmp(v_ref=0.45, offset=0.60),
        )
        table.deploy(array)
        for address in trace_addresses(table, 10, rng):
            route, outcome = table.lookup_tcam(array, address)
            assert route is None  # every lookup misses
        # And the errors are visible in the outcome accounting.
        out = array.search(word_from_int(0, 32))
        assert out.first_match is None


class TestDisturbedCellOvermatches:
    def test_weakened_pulldown_reads_as_match_under_short_strobe(self):
        """A disturb-weakened LVT device (large positive VT shift) cannot
        discharge its line inside the window: the row over-matches."""
        from repro.analysis.margin import worst_case_margin

        cell = FeFET2TCell()
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, 32))
        corner = worst_case_margin(
            cell,
            array.c_ml,
            32,
            0.9,
            0.9,
            0.45,
            array.t_eval,
            pulldown_vt_offset=0.9,  # disturb ate most of the window
        )
        assert not corner.miss_read_correctly

    def test_healthy_cell_same_corner_is_fine(self):
        from repro.analysis.margin import worst_case_margin

        cell = FeFET2TCell()
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, 32))
        corner = worst_case_margin(
            cell, array.c_ml, 32, 0.9, 0.9, 0.45, array.t_eval
        )
        assert corner.functional
