"""Degenerate-geometry tests: 1x1, 1xN and Nx1 arrays must still be exact.

Tiny arrays exercise every boundary in the accounting (single-cell match
lines, single-row priority encoders, empty leak ensembles) that normal
workloads never touch.
"""

from __future__ import annotations

import numpy as np

from repro.core import build_array
from repro.tcam import ArrayGeometry, TernaryWord, Trit, random_word, word_from_string


class TestOneByOne:
    def test_store_and_find_single_trit(self, any_design):
        arr = build_array(any_design, ArrayGeometry(1, 1))
        arr.write(0, word_from_string("1"))
        assert arr.search(word_from_string("1")).match_mask[0]
        assert not arr.search(word_from_string("0")).match_mask[0]
        assert arr.search(word_from_string("1")).functional_errors == 0

    def test_stored_x_matches_both(self, any_design):
        arr = build_array(any_design, ArrayGeometry(1, 1))
        arr.write(0, word_from_string("X"))
        assert arr.search(word_from_string("0")).match_mask[0]
        assert arr.search(word_from_string("1")).match_mask[0]

    def test_energy_positive_even_at_minimum(self, any_design):
        arr = build_array(any_design, ArrayGeometry(1, 1))
        arr.write(0, word_from_string("1"))
        out = arr.search(word_from_string("0"))
        assert out.energy_total > 0.0


class TestSingleRow:
    def test_wide_single_row(self, any_design):
        rng = np.random.default_rng(0)
        arr = build_array(any_design, ArrayGeometry(1, 64))
        word = random_word(64, rng, x_fraction=0.3)
        arr.write(0, word)
        for _ in range(4):
            key = random_word(64, rng)
            out = arr.search(key)
            assert bool(out.match_mask[0]) == word.matches(key)
            assert out.functional_errors == 0


class TestSingleColumn:
    def test_tall_single_column(self, any_design):
        rng = np.random.default_rng(1)
        arr = build_array(any_design, ArrayGeometry(64, 1))
        words = [random_word(1, rng, x_fraction=0.2) for _ in range(64)]
        arr.load(words)
        for key_char in ("0", "1"):
            key = word_from_string(key_char)
            out = arr.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected)


class TestFullyMaskedKeys:
    def test_all_x_key_on_every_design(self, any_design):
        rng = np.random.default_rng(2)
        arr = build_array(any_design, ArrayGeometry(4, 8))
        arr.load([random_word(8, rng) for _ in range(4)])
        out = arr.search(TernaryWord([Trit.X] * 8))
        assert out.match_mask.all()
        assert out.functional_errors == 0

    def test_nand_invalidate_parity(self):
        from repro.core import get_design

        arr = build_array(get_design("fefet_nand"), ArrayGeometry(2, 8))
        arr.write(0, word_from_string("10101010"))
        arr.invalidate(0)
        out = arr.search(word_from_string("10101010"))
        assert not out.match_mask.any()
