"""End-to-end integration tests across the full stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ArrayGeometry,
    EnergyComponent,
    all_designs,
    build_array,
    get_design,
    random_word,
)
from repro.tcam.writer import WriteScheduler
from repro.workloads.iproute import synthetic_routing_table, trace_addresses


class TestEveryDesignFullPipeline:
    """Write -> search -> verify -> account, for all five designs."""

    def test_write_search_roundtrip(self, any_design):
        rng = np.random.default_rng(31)
        arr = build_array(any_design, ArrayGeometry(16, 32))
        words = [random_word(32, rng, x_fraction=0.25) for _ in range(16)]
        e_write = arr.load(words)
        assert e_write.get(EnergyComponent.WRITE) > 0.0

        errors = 0
        for _ in range(10):
            key = random_word(32, rng)
            out = arr.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected)
            errors += out.functional_errors
        assert errors == 0

    def test_energy_ledger_complete(self, any_design):
        """Every search books ML (or race), SL, decision and leakage terms."""
        rng = np.random.default_rng(32)
        arr = build_array(any_design, ArrayGeometry(8, 16))
        arr.load([random_word(16, rng) for _ in range(8)])
        out = arr.search(random_word(16, rng))
        bd = out.energy.breakdown()
        if any_design.sensing == "precharge":
            assert bd.get(EnergyComponent.ML_PRECHARGE.value, 0.0) > 0.0
            assert bd.get(EnergyComponent.SENSE_AMP.value, 0.0) > 0.0
        elif any_design.sensing == "nand":
            # A miss-dominated key barely moves any NAND string; the eval
            # latch and search lines still show up.
            assert bd.get(EnergyComponent.SENSE_AMP.value, 0.0) > 0.0
        else:
            assert bd.get(EnergyComponent.RACE_SOURCE.value, 0.0) > 0.0
        assert bd.get(EnergyComponent.SEARCHLINE.value, 0.0) > 0.0
        assert bd.get(EnergyComponent.LEAKAGE.value, 0.0) > 0.0
        assert bd.get(EnergyComponent.PRIORITY_ENCODER.value, 0.0) > 0.0


class TestHeadlineOrdering:
    """The paper's headline claims, verified end-to-end on one workload."""

    @pytest.fixture(scope="class")
    def energies(self):
        rng = np.random.default_rng(33)
        geo = ArrayGeometry(32, 64)
        words = [random_word(64, rng, x_fraction=0.3) for _ in range(32)]
        keys = [random_word(64, rng) for _ in range(6)]
        result = {}
        for spec in all_designs():
            arr = build_array(spec, geo)
            arr.load(words)
            result[spec.name] = sum(arr.search(k).energy_total for k in keys) / len(keys)
        return result

    def test_fefet_beats_cmos(self, energies):
        assert energies["fefet2t"] < 0.7 * energies["cmos16t"]

    def test_lv_beats_plain_fefet(self, energies):
        assert energies["fefet2t_lv"] < 0.85 * energies["fefet2t"]

    def test_cr_beats_plain_fefet(self, energies):
        assert energies["fefet_cr"] < 0.85 * energies["fefet2t"]

    def test_proposed_beat_cmos_by_at_least_2x(self, energies):
        best = min(energies["fefet2t_lv"], energies["fefet_cr"])
        assert energies["cmos16t"] / best > 2.0

    def test_reram_between_cmos_and_fefet(self, energies):
        assert energies["fefet2t"] < energies["reram2t2r"] <= energies["cmos16t"] * 1.05


class TestApplicationPipeline:
    def test_routing_updates_then_lookups(self):
        """Incremental route updates through the scheduler, then lookups."""
        rng = np.random.default_rng(34)
        table = synthetic_routing_table(30, rng)
        arr = build_array(get_design("fefet2t_lv"), ArrayGeometry(64, 32))
        sched = WriteScheduler(arr)
        _, e_initial, _ = sched.update(table.words())

        # Replace five routes and update incrementally.
        table2 = synthetic_routing_table(30, rng)
        merged = table.words()[:25] + table2.words()[:5]
        plan, e_update, _ = sched.update(merged)
        assert len(plan.writes) <= 30
        assert e_update.total < e_initial.total

        for addr in trace_addresses(table, 10, rng):
            _, outcome = table.lookup_tcam(arr, addr)
            assert outcome.functional_errors == 0

    def test_search_energy_much_smaller_than_write(self):
        """FeFET searches are cheap; writes are the tax (shape claim R-T3)."""
        rng = np.random.default_rng(35)
        arr = build_array(get_design("fefet2t"), ArrayGeometry(16, 32))
        words = [random_word(32, rng) for _ in range(16)]
        e_write = arr.load(words).total / 16  # per word
        e_search = arr.search(random_word(32, rng)).energy_total / 16  # per word-slot
        assert e_write > 5.0 * e_search
