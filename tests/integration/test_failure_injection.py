"""Failure-injection tests: the physical decision path really can fail."""

from __future__ import annotations

import numpy as np

from repro.circuits.senseamp import VoltageSenseAmp
from repro.core import build_array, get_design
from repro.tcam import ArrayGeometry, TCAMArray, random_word
from repro.tcam.cells import FeFET2TCell


class TestSenseAmpOffsetFailures:
    def test_huge_positive_offset_misses_real_matches(self):
        """An SA that references far above the ML can never see a match."""
        rng = np.random.default_rng(0)
        geo = ArrayGeometry(8, 16)
        arr = TCAMArray(
            FeFET2TCell(),
            geo,
            sense_amp=VoltageSenseAmp(v_ref=0.45, offset=0.60),
        )
        words = [random_word(16, rng) for _ in range(8)]
        arr.load(words)
        out = arr.search(words[0])
        assert not out.match_mask[0]
        assert out.functional_errors > 0

    def test_huge_negative_offset_reports_phantom_matches(self):
        """An SA referenced near ground reads every discharged-but-slow line
        as a match within a short window."""
        rng = np.random.default_rng(1)
        geo = ArrayGeometry(8, 16)
        cell = FeFET2TCell()
        arr = TCAMArray(
            cell,
            geo,
            sense_amp=VoltageSenseAmp(v_ref=0.45, offset=-0.449),
            t_eval=1e-12,  # strobe long before any line can discharge
        )
        words = [random_word(16, rng) for _ in range(8)]
        arr.load(words)
        key = random_word(16, rng)
        out = arr.search(key)
        logical = np.array([w.matches(key) for w in words])
        if not logical.all():
            assert out.functional_errors > 0


class TestUndersizedSwing:
    def test_tiny_ml_swing_still_functions_nominally(self):
        """The nominal corner is robust even at low swing (the MC analysis,
        not the nominal one, is what bounds the usable floor)."""
        rng = np.random.default_rng(2)
        arr = build_array(get_design("fefet2t_lv"), ArrayGeometry(8, 16), ml_swing=0.2)
        words = [random_word(16, rng) for _ in range(8)]
        arr.load(words)
        out = arr.search(words[3])
        assert out.match_mask[3]
        assert out.functional_errors == 0

    def test_short_eval_window_misreads_misses(self):
        """Strobing before the single-miss line crosses the reference makes
        every near-miss word look like a match."""
        rng = np.random.default_rng(3)
        cell = FeFET2TCell()
        geo = ArrayGeometry(4, 16)
        arr = TCAMArray(cell, geo, t_eval=1e-13)
        words = [random_word(16, rng) for _ in range(4)]
        arr.load(words)
        # Key differing from word 0 in exactly one position.
        flipped = words[0].as_array().copy()
        flipped[0] = 1 - flipped[0]
        from repro.tcam.trit import TernaryWord

        out = arr.search(TernaryWord(flipped))
        assert out.match_mask[0]  # physically misread
        assert out.functional_errors >= 1


class TestStuckCells:
    def test_stuck_x_row_matches_everything(self):
        """A row erased to all-X (retention loss) aliases as always-match."""
        rng = np.random.default_rng(4)
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        words = [random_word(16, rng) for _ in range(4)]
        arr.load(words)
        from repro.tcam.trit import TernaryWord, Trit

        arr.write(2, TernaryWord([Trit.X] * 16))  # polarization lost
        key = random_word(16, rng)
        out = arr.search(key)
        assert out.match_mask[2]  # phantom match on the damaged row
