"""Cross-layer invariants, property-tested over random workloads.

These encode physical facts the whole accounting must respect regardless
of workload: energies are non-negative and additive, the full-swing ML
restore always draws twice what the discharge dissipated (the other half
burned in the precharge device), more mismatches can only discharge a
line faster, and masking search columns can only reduce energy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_array, get_design
from repro.energy import EnergyComponent
from repro.tcam import ArrayGeometry, TernaryWord, Trit, random_word


def _loaded(seed: int, design: str = "fefet2t", rows: int = 8, cols: int = 16):
    rng = np.random.default_rng(seed)
    array = build_array(get_design(design), ArrayGeometry(rows, cols))
    words = [random_word(cols, rng, x_fraction=0.25) for _ in range(rows)]
    array.load(words)
    return array, words, rng


class TestEnergyInvariants:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_every_component_non_negative(self, seed):
        array, words, rng = _loaded(seed)
        out = array.search(random_word(16, rng))
        assert all(v >= 0.0 for v in out.energy.breakdown().values())

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_full_swing_restore_twice_dissipation(self, seed):
        """Charging C by dV from a supply at V draws C*dV*V; with the full
        swing (V_pre == VDD) exactly half lands on the capacitor, so the
        ML restore must book ~2x the ML dissipation on fully discharged
        lines -- a hard energy-conservation check on the accounting."""
        array, words, rng = _loaded(seed)
        out = array.search(random_word(16, rng))
        restore = out.energy.get(EnergyComponent.ML_PRECHARGE)
        dissipated = out.energy.get(EnergyComponent.ML_DISSIPATION)
        if dissipated > 0.0:
            assert restore == pytest.approx(2.0 * dissipated, rel=0.05)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_masking_columns_never_increases_ml_energy(self, seed):
        array_a, words, rng = _loaded(seed)
        array_b, _, _ = _loaded(seed)
        key = random_word(16, rng)
        masked = TernaryWord(
            [Trit.X if i < 8 else t for i, t in enumerate(key)]
        )
        e_full = array_a.search(key).energy.get(EnergyComponent.ML_PRECHARGE)
        e_masked = array_b.search(masked).energy.get(EnergyComponent.ML_PRECHARGE)
        assert e_masked <= e_full * (1.0 + 1e-9)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_search_outcome_total_matches_ledger(self, seed):
        array, words, rng = _loaded(seed)
        out = array.search(random_word(16, rng))
        assert out.energy_total == pytest.approx(sum(out.energy.breakdown().values()))


class TestTimingInvariants:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_cycle_never_shorter_than_evaluation(self, seed):
        array, words, rng = _loaded(seed)
        out = array.search(random_word(16, rng))
        assert out.cycle_time >= array.t_eval

    def test_more_misses_cross_faster(self):
        """Discharge time is non-increasing in the mismatch count."""
        from repro.circuits.matchline import MatchLine, MatchLineLoad

        array, _, _ = _loaded(0)
        times = []
        for n_miss in (1, 2, 4, 8):
            load = MatchLineLoad(
                array.c_ml, n_miss, 16 - n_miss,
                array.cell.i_pulldown, array.cell.i_leak,
            )
            times.append(MatchLine(load, 0.9, 0.9).time_to(0.45))
        assert times == sorted(times, reverse=True)


class TestStateInvariants:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_search_never_mutates_stored_data(self, seed):
        array, words, rng = _loaded(seed)
        before = array.stored_matrix()
        array.search(random_word(16, rng))
        assert np.array_equal(array.stored_matrix(), before)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_physical_equals_logical_at_nominal_corner(self, seed):
        """With no injected variation the physical decision path must agree
        with the ternary algebra on every row, every design."""
        for design in ("cmos16t", "fefet2t", "fefet2t_lv", "fefet_cr", "fefet_nand"):
            array, words, rng = _loaded(seed, design=design)
            key = random_word(16, rng)
            out = array.search(key)
            assert out.functional_errors == 0, design
