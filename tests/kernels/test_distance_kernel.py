"""Distance kernel bit-identity: nearest / threshold / top-k batch APIs.

Under ``enable_kernel()`` the three distance-mode batch searches run on
the fused distance kernel (one SoA matmul for the whole mismatch
matrix, windows and droop voltages gathered from the compiled tables).
Nothing may change: winner rows, distances, masks, delays, and every
per-component ledger float -- *including the booking order* -- must
equal the scalar reference loop exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import all_designs, build_array, get_design
from repro.errors import KernelError, TCAMError
from repro.faults.faultmap import FaultMap
from repro.tcam import ArrayGeometry
from repro.tcam.trit import random_word

PRECHARGE = [spec.name for spec in all_designs() if spec.sensing == "precharge"]


def _loaded_pair(design_name, rows=16, cols=24, seed=7, x_fraction=0.2):
    """Two identically-written arrays; the second runs the kernel."""
    spec = get_design(design_name)
    geo = ArrayGeometry(rows=rows, cols=cols)
    a = build_array(spec, geo)
    b = build_array(spec, geo)
    rng = np.random.default_rng(seed)
    words = [random_word(cols, rng, x_fraction) for _ in range(rows)]
    for i, w in enumerate(words):
        a.write(i, w)
        b.write(i, w)
    b.enable_kernel()
    return a, b


def _keys(cols, n, seed, x_fraction=0.15):
    rng = np.random.default_rng(seed)
    return [random_word(cols, rng, x_fraction) for _ in range(n)]


def _assert_ledger_identical(s, b):
    s_dict, b_dict = s.energy.as_dict(), b.energy.as_dict()
    # list() comparison checks the *booking order*, not just the values:
    # the kernel must assemble its ledgers in the scalar component order.
    assert list(s_dict) == list(b_dict)
    for component, value in s_dict.items():
        assert b_dict[component] == value, component
    assert s.energy.total == b.energy.total


class TestNearestBatchKernel:
    @pytest.mark.parametrize("design", PRECHARGE)
    def test_bit_identical_to_scalar(self, design):
        a, b = _loaded_pair(design)
        keys = _keys(24, 16, seed=13)
        scalar = [a.nearest_match(k) for k in keys]
        kernel = b.nearest_match_batch(keys)
        assert len(scalar) == len(kernel)
        for s, x in zip(scalar, kernel):
            assert s.row == x.row
            assert s.distance == x.distance
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)
        assert b.kernel.table_hits > 0
        assert b.kernel.rk4_fallbacks == 0

    @pytest.mark.parametrize("design", PRECHARGE)
    def test_bit_identical_to_legacy_batch(self, design):
        a, b = _loaded_pair(design)
        keys = _keys(24, 16, seed=17)
        legacy = a.nearest_match_batch(keys)
        kernel = b.nearest_match_batch(keys)
        for s, x in zip(legacy, kernel):
            assert s.row == x.row
            assert s.distance == x.distance
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)

    def test_fallback_mix(self):
        """Keys past the compiled grid fall back per key, still exactly."""
        a, b = _loaded_pair("fefet2t")
        keys = _keys(24, 20, seed=23, x_fraction=0.4)
        drivens = sorted(sum(1 for t in k if int(t) != 2) for k in keys)
        b.enable_kernel(max_driven=drivens[len(drivens) // 2])
        scalar = [a.nearest_match(k) for k in keys]
        kernel = b.nearest_match_batch(keys)
        for s, x in zip(scalar, kernel):
            assert s.row == x.row
            assert s.distance == x.distance
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)
        assert b.kernel.table_hits > 0
        assert b.kernel.rk4_fallbacks > 0

    def test_counters_delta_sync_to_metrics(self):
        _, b = _loaded_pair("fefet2t")
        keys = _keys(24, 8, seed=5)
        with obs.observe() as session:
            b.nearest_match_batch(keys)
            snapshot = session.metrics.snapshot()
        assert snapshot["kernels.table_hits"] == b.kernel.table_hits
        assert snapshot["kernels.table_hits"] > 0


class TestThresholdBatchKernel:
    @pytest.mark.parametrize("design", PRECHARGE)
    @pytest.mark.parametrize("max_distance", [0, 2, 24])
    def test_bit_identical_to_scalar(self, design, max_distance):
        a, b = _loaded_pair(design)
        keys = _keys(24, 12, seed=19)
        scalar = [a.threshold_match(k, max_distance) for k in keys]
        kernel = b.threshold_match_batch(keys, max_distance)
        assert len(scalar) == len(kernel)
        for s, x in zip(scalar, kernel):
            assert np.array_equal(s.match_mask, x.match_mask)
            assert s.first_match == x.first_match
            assert s.n_matches == x.n_matches
            assert s.max_distance == x.max_distance
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)
        assert b.kernel.table_hits > 0

    def test_bit_identical_to_legacy_batch(self):
        a, b = _loaded_pair("fefet2t")
        keys = _keys(24, 12, seed=29)
        legacy = a.threshold_match_batch(keys, 3)
        kernel = b.threshold_match_batch(keys, 3)
        for s, x in zip(legacy, kernel):
            assert np.array_equal(s.match_mask, x.match_mask)
            assert s.first_match == x.first_match
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)


class TestTopKBatchKernel:
    @pytest.mark.parametrize("design", PRECHARGE)
    @pytest.mark.parametrize("k", [1, 3, 16])
    def test_bit_identical_to_scalar(self, design, k):
        a, b = _loaded_pair(design)
        keys = _keys(24, 12, seed=31)
        scalar = [a.topk_match(key, k) for key in keys]
        kernel = b.topk_match_batch(keys, k)
        assert len(scalar) == len(kernel)
        for s, x in zip(scalar, kernel):
            assert s.rows == x.rows
            assert s.distances == x.distances
            assert s.k == x.k
            assert s.search_delay == x.search_delay
            _assert_ledger_identical(s, x)

    def test_k1_agrees_with_nearest(self):
        """Top-1 must return the nearest winner (same tie-breaking)."""
        _, b = _loaded_pair("fefet2t")
        keys = _keys(24, 10, seed=37)
        top1 = b.topk_match_batch(keys, 1)
        nearest = b.nearest_match_batch(keys)
        for t, n in zip(top1, nearest):
            assert t.rows[0] == n.row
            assert t.distances[0] == n.distance


class TestWindowTables:
    def test_window_row_matches_reference_windows(self):
        _, b = _loaded_pair("fefet2t")
        eng = b.kernel
        v_pre = b.precharge.target_voltage()
        for driven in (1, 5, 24):
            row = eng.window_row(driven)
            assert row.shape == (driven + 1,)
            assert row[0] == b.t_eval
            for n in range(1, driven + 1):
                assert row[n] == b._nearest_window_cached(n, driven, v_pre)

    def test_window_row_is_read_only_and_guarded(self):
        _, b = _loaded_pair("fefet2t")
        row = b.kernel.window_row(4)
        with pytest.raises(ValueError):
            row[0] = 0.0
        with pytest.raises(KernelError):
            b.kernel.window_row(25)

    def test_current_race_has_no_window_tables(self):
        a = build_array(get_design("fefet_cr"), ArrayGeometry(rows=4, cols=8))
        eng = a.enable_kernel()
        with pytest.raises(KernelError):
            eng.window_row(4)


class TestGuards:
    def test_sensing_guard_names_the_batch_api(self):
        a = build_array(get_design("fefet_cr"), ArrayGeometry(rows=4, cols=8))
        key = random_word(8, np.random.default_rng(0))
        with pytest.raises(TCAMError, match=r"threshold_match_batch\(\)"):
            a.threshold_match_batch([key], 2)
        with pytest.raises(TCAMError, match=r"topk_match_batch\(\)"):
            a.topk_match_batch([key], 2)
        with pytest.raises(TCAMError, match=r"nearest_match_batch\(\)"):
            a.nearest_match_batch([key])

    def test_fault_guard_names_the_batch_api(self):
        _, b = _loaded_pair("fefet2t")
        fm = FaultMap(16, 24)
        fm.set_dead_row(3)
        b.attach_faults(fm)
        key = random_word(24, np.random.default_rng(0))
        with pytest.raises(TCAMError, match=r"nearest_match_batch\(\)"):
            b.nearest_match_batch([key])
        with pytest.raises(TCAMError, match=r"threshold_match_batch\(\)"):
            b.threshold_match_batch([key], 2)
        with pytest.raises(TCAMError, match=r"topk_match_batch\(\)"):
            b.topk_match_batch([key], 2)


class TestAdoptTables:
    def _pair_of_engines(self):
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=8, cols=16)
        rng = np.random.default_rng(3)
        a = build_array(spec, geo)
        b = build_array(spec, geo)
        a.load([random_word(16, rng) for _ in range(8)])
        b.load([random_word(16, rng) for _ in range(8)])
        return a, b, a.enable_kernel(), b.enable_kernel()

    def test_tables_shared_by_reference(self):
        _, _, donor, adopter = self._pair_of_engines()
        donor.precompute([10])
        donor.window_row(10)
        adopter.adopt_tables(donor)
        assert adopter._rows is donor._rows
        assert adopter._window_rows is donor._window_rows
        assert adopter.waveform is donor.waveform
        assert adopter.rows_built == donor.rows_built
        # Lazy builds through the adopter land in the shared cache.
        adopter.row(6)
        assert 6 in donor._rows

    def test_adopted_results_stay_bit_identical(self):
        a, b, donor, adopter = self._pair_of_engines()
        adopter.adopt_tables(donor)
        keys = _keys(16, 8, seed=9)
        # Scalar reference on an identically-written fresh array so both
        # paths start from the same search-line toggle history.
        spec = get_design("fefet2t")
        c = build_array(spec, ArrayGeometry(rows=8, cols=16))
        c.load([b.word_at(r) for r in range(8)])
        ref = [c.nearest_match(k) for k in keys]
        kernel = b.nearest_match_batch(keys)
        for r, x in zip(ref, kernel):
            assert r.row == x.row
            assert r.distance == x.distance
            _assert_ledger_identical(r, x)
        # Adoption counters stay per-engine.
        assert adopter.table_hits > 0
        assert donor.table_hits == 0

    def test_rejects_electrically_different_arrays(self):
        spec = get_design("fefet2t")
        a = build_array(spec, ArrayGeometry(rows=8, cols=16))
        b = build_array(spec, ArrayGeometry(rows=8, cols=12))
        with pytest.raises(KernelError, match="electrically different"):
            b.enable_kernel().adopt_tables(a.enable_kernel())
        c = build_array(get_design("cmos16t"), ArrayGeometry(rows=8, cols=16))
        with pytest.raises(KernelError, match="electrically different"):
            c.enable_kernel().adopt_tables(a.kernel)

    def test_self_adoption_is_a_no_op(self):
        _, _, donor, _ = self._pair_of_engines()
        donor.precompute([4])
        rows = donor._rows
        donor.adopt_tables(donor)
        assert donor._rows is rows
