"""KernelEngine: compiled class rows, counters, sequential reductions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_designs, build_array, get_design
from repro.errors import KernelError
from repro.kernels import KernelEngine, PrechargeClassRow, RaceClassRow, sequential_segment_sum
from repro.tcam import ArrayGeometry

SEARCHABLE = [spec.name for spec in all_designs() if spec.sensing != "nand"]


def _array(design="fefet2t", rows=8, cols=12):
    return build_array(get_design(design), ArrayGeometry(rows=rows, cols=cols))


class TestSequentialSegmentSum:
    def test_matches_left_to_right_loop_bitwise(self):
        """The whole point: bitwise equality with sequential accumulation."""
        rng = np.random.default_rng(42)
        # Wildly mixed magnitudes make pairwise vs sequential summation
        # visibly different at the ULP level.
        flat = rng.uniform(1e-30, 1.0, size=200) * 10.0 ** rng.integers(-15, 15, size=200)
        starts = np.array([0, 3, 3, 50, 120])
        ends = np.array([3, 3, 50, 120, 200])
        got = sequential_segment_sum(flat, starts, ends)
        for i, (lo, hi) in enumerate(zip(starts, ends)):
            acc = 0.0
            for x in flat[lo:hi]:
                acc = acc + x
            assert got[i] == acc, f"segment {i} diverged from sequential sum"

    def test_empty_segments_are_zero(self):
        got = sequential_segment_sum(np.array([1.0, 2.0]), np.array([1, 2]), np.array([1, 2]))
        assert np.array_equal(got, [0.0, 0.0])

    def test_no_segments(self):
        got = sequential_segment_sum(np.array([1.0]), np.array([], dtype=int), np.array([], dtype=int))
        assert got.size == 0


class TestEngineRows:
    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_rows_match_array_class_helpers(self, design):
        """Every tabulated field equals the legacy per-class result."""
        array = _array(design)
        engine = KernelEngine(array, max_driven=8)
        for driven in (0, 3, 8):
            row = engine.row(driven)
            for n_miss in range(driven + 1):
                if array.sensing == "precharge":
                    assert isinstance(row, PrechargeClassRow)
                    ref = array._precharge_class_from_v_end(
                        engine.waveform.v_end(n_miss, driven)
                    )
                    assert row.v_end[n_miss] == ref.v_end
                    assert bool(row.is_match[n_miss]) == ref.is_match
                    assert row.e_restore[n_miss] == ref.e_restore
                    assert row.e_diss[n_miss] == ref.e_diss
                    assert row.e_sense[n_miss] == ref.e_sense
                    assert row.t_sense[n_miss] == ref.t_sense
                    assert row.t_restore[n_miss] == ref.t_restore
                else:
                    assert isinstance(row, RaceClassRow)
                    ref = array._race_class(n_miss, driven)
                    assert bool(row.is_match[n_miss]) == ref.is_match
                    assert row.energy[n_miss] == ref.energy
                    assert row.delay[n_miss] == ref.delay

    def test_rows_cached_and_read_only(self):
        engine = KernelEngine(_array(), max_driven=6)
        row = engine.row(4)
        assert engine.row(4) is row
        assert engine.rows_built == 1
        with pytest.raises(ValueError):
            row.e_sense[0] = 1.0

    def test_bad_max_driven_raises(self):
        with pytest.raises(KernelError):
            KernelEngine(_array(cols=12), max_driven=13)
        with pytest.raises(KernelError):
            KernelEngine(_array(), max_driven=-1)

    def test_out_of_grid_row_raises(self):
        engine = KernelEngine(_array(), max_driven=5)
        assert engine.in_grid(5) and not engine.in_grid(6)
        with pytest.raises(KernelError):
            engine.row(6)

    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_validate_within_budget(self, design):
        engine = KernelEngine(_array(design), max_driven=6)
        engine.precompute()
        assert engine.validate(rtol=1e-9) == 0.0

    def test_counters_snapshot(self):
        engine = KernelEngine(_array(), max_driven=4)
        engine.precompute()
        counters = engine.counters()
        assert counters["rows_built"] == 5
        assert counters["table_hits"] == 0
        assert counters["rk4_fallbacks"] == 0
