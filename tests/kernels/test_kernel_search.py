"""Kernel search path: bit-identity with the legacy engine and scalar loop.

The compiled kernel (`enable_kernel()`) must never change a single bit of
any outcome: match masks, first match, delays, histograms, and every
per-component ledger float must equal both the legacy batch engine and
the sequential scalar loop -- across designs, row masks, rewrites, fault
maps, and the RK4 fallback mix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import all_designs, build_array, get_design
from repro.faults.faultmap import FaultKind, FaultMap
from repro.tcam import ArrayGeometry
from repro.tcam.trit import random_word

SEARCHABLE = [spec.name for spec in all_designs() if spec.sensing != "nand"]


def _loaded_trio(design_name, rows=16, cols=24, seed=7, x_fraction=0.2):
    """Three identically-written arrays: scalar, legacy batch, kernel."""
    spec = get_design(design_name)
    geo = ArrayGeometry(rows=rows, cols=cols)
    arrays = [build_array(spec, geo) for _ in range(3)]
    rng = np.random.default_rng(seed)
    words = [random_word(cols, rng, x_fraction) for _ in range(rows)]
    for i, w in enumerate(words):
        for a in arrays:
            a.write(i, w)
    arrays[2].enable_kernel()
    return arrays


def _keys(cols, n, seed, x_fraction=0.15):
    rng = np.random.default_rng(seed)
    return [random_word(cols, rng, x_fraction) for _ in range(n)]


def _assert_outcomes_identical(reference, kernel):
    assert len(reference) == len(kernel)
    for s, b in zip(reference, kernel):
        assert np.array_equal(s.match_mask, b.match_mask)
        assert s.first_match == b.first_match
        assert s.search_delay == b.search_delay
        assert s.cycle_time == b.cycle_time
        assert s.miss_histogram == b.miss_histogram
        assert s.functional_errors == b.functional_errors
        s_breakdown = s.energy.breakdown()
        b_breakdown = b.energy.breakdown()
        assert set(s_breakdown) == set(b_breakdown)
        for component, value in s_breakdown.items():
            # Exact float equality: the kernel must book the very same
            # numbers, not merely close ones.
            assert b_breakdown[component] == value, component
        assert s.energy.total == b.energy.total


class TestKernelEquivalence:
    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_bit_identical_to_scalar_and_legacy(self, design):
        scalar, legacy, kernel = _loaded_trio(design)
        keys = _keys(24, 24, seed=11)
        ref_scalar = [scalar.search(k) for k in keys]
        ref_legacy = legacy.search_batch(keys)
        got = kernel.search_batch(keys)
        _assert_outcomes_identical(ref_scalar, got)
        _assert_outcomes_identical(ref_legacy, got)
        assert kernel.kernel.table_hits > 0
        assert kernel.kernel.rk4_fallbacks == 0

    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_row_mask(self, design):
        _, legacy, kernel = _loaded_trio(design)
        mask = np.zeros(16, dtype=bool)
        mask[::3] = True
        keys = _keys(24, 12, seed=13)
        _assert_outcomes_identical(
            legacy.search_batch(keys, row_mask=mask),
            kernel.search_batch(keys, row_mask=mask),
        )

    def test_all_x_keys_and_repeats(self):
        """driven == 0 classes and back-to-back repeated keys."""
        _, legacy, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 6, seed=29)
        keys = [keys[0], keys[0]] + keys[1:] + _keys(24, 2, seed=31, x_fraction=1.0)
        _assert_outcomes_identical(legacy.search_batch(keys), kernel.search_batch(keys))

    def test_rewrite_rebuilds_snapshot(self):
        """A write between batches must be visible to the kernel path."""
        _, legacy, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 8, seed=17)
        _assert_outcomes_identical(legacy.search_batch(keys), kernel.search_batch(keys))
        rng = np.random.default_rng(19)
        new_word = random_word(24, rng, x_fraction=0.1)
        legacy.write(5, new_word)
        kernel.write(5, new_word)
        legacy.invalidate(2)
        kernel.invalidate(2)
        _assert_outcomes_identical(legacy.search_batch(keys), kernel.search_batch(keys))

    def test_disable_kernel_restores_legacy(self):
        _, legacy, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 8, seed=23)
        kernel.disable_kernel()
        assert kernel.kernel is None
        _assert_outcomes_identical(legacy.search_batch(keys), kernel.search_batch(keys))


class TestKernelFallback:
    def test_max_driven_mix_is_bit_identical(self):
        """In-grid keys use the tables, the rest the RK4 reference path."""
        scalar, legacy, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 24, seed=37, x_fraction=0.3)
        drivens = [int(np.count_nonzero(k.as_array() != 2)) for k in keys]
        kernel.disable_kernel()
        engine = kernel.enable_kernel(max_driven=int(np.median(drivens)))
        got = kernel.search_batch(keys)
        _assert_outcomes_identical([scalar.search(k) for k in keys], got)
        _assert_outcomes_identical(legacy.search_batch(keys), got)
        assert engine.table_hits > 0
        assert engine.rk4_fallbacks > 0


class TestKernelWithFaults:
    def test_empty_fault_map_keeps_kernel_path(self):
        _, legacy, kernel = _loaded_trio("fefet2t")
        for a in (legacy, kernel):
            a.attach_faults(FaultMap(16, 24))
        keys = _keys(24, 10, seed=41)
        _assert_outcomes_identical(legacy.search_batch(keys), kernel.search_batch(keys))
        assert kernel.kernel.table_hits > 0

    def test_sa_offset_routes_to_reference_path(self):
        """Per-row offsets break class grouping; outcomes must still match
        the scalar fault-aware loop exactly."""
        scalar, _, kernel = _loaded_trio("fefet2t")
        for a in (scalar, kernel):
            fm = FaultMap(16, 24)
            fm.set_sa_offset(4, 0.03)
            a.attach_faults(fm)
        keys = _keys(24, 10, seed=43)
        before = kernel.kernel.table_hits
        _assert_outcomes_identical(
            [scalar.search(k) for k in keys], kernel.search_batch(keys)
        )
        assert kernel.kernel.table_hits == before, "faulty batch must not use tables"

    def test_cell_faults_route_to_reference_path(self):
        scalar, _, kernel = _loaded_trio("fefet2t")
        for a in (scalar, kernel):
            fm = FaultMap(16, 24)
            fm.set_cell(3, 7, FaultKind.STUCK_MISS)
            fm.set_dead_row(9)
            a.attach_faults(fm)
        keys = _keys(24, 10, seed=47)
        _assert_outcomes_identical(
            [scalar.search(k) for k in keys], kernel.search_batch(keys)
        )


class TestKernelMetrics:
    def test_counters_reach_registry(self):
        _, _, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 16, seed=53, x_fraction=0.3)
        drivens = [int(np.count_nonzero(k.as_array() != 2)) for k in keys]
        kernel.disable_kernel()
        kernel.enable_kernel(max_driven=int(np.median(drivens)))
        with obs.observe() as session:
            kernel.search_batch(keys)
            snapshot = session.metrics.snapshot()
        assert snapshot["kernels.table_hits"] == kernel.kernel.table_hits
        assert snapshot["kernels.rk4_fallbacks"] == kernel.kernel.rk4_fallbacks
        assert snapshot["kernels.table_hits"] > 0
        assert snapshot["kernels.rk4_fallbacks"] > 0

    def test_counters_are_deltas_per_batch(self):
        """A second observed batch books only its own increments."""
        _, _, kernel = _loaded_trio("fefet2t")
        keys = _keys(24, 8, seed=59)
        kernel.search_batch(keys)  # accrue un-observed counts first
        before = kernel.kernel.table_hits
        with obs.observe() as session:
            kernel.search_batch(keys)
            snapshot = session.metrics.snapshot()
        assert snapshot["kernels.table_hits"] == kernel.kernel.table_hits - before
        assert snapshot["kernels.table_hits"] > 0
