"""Shared-memory search transport vs the serial reference, end to end.

The parallel ``search_batch`` paths now ship bulk key/count arrays
through ``multiprocessing.shared_memory`` instead of pickling them per
chunk.  These tests pin the contract on the real search entry points:
for 1/2/4 workers the outcomes, cache counters and drive state are
bit-identical to the serial run, and multi-worker runs actually use the
shm transport.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.parallel import last_payload_stats, shared_memory_available
from repro.tcam import ArrayGeometry, GatingPolicy, TCAMChip
from repro.tcam.trit import random_word

WORKER_COUNTS = (1, 2, 4)


def _loaded_array(rows=16, cols=32, seed=1):
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows, cols))
    rng = np.random.default_rng(seed)
    array.load([random_word(cols, rng, x_fraction=0.25) for _ in range(rows)])
    return array


def _fresh_chip():
    geo = ArrayGeometry(rows=8, cols=16)
    chip = TCAMChip(
        lambda: build_array(get_design("fefet2t"), geo),
        n_banks=3,
        gating=GatingPolicy(gate_idle_banks=True),
    )
    rng = np.random.default_rng(2)
    chip.load([random_word(geo.cols, rng, x_fraction=0.2) for _ in range(20)])
    return chip


def _outcomes_equal(a, b) -> bool:
    return (
        np.array_equal(a.match_mask, b.match_mask)
        and a.first_match == b.first_match
        and a.energy.as_dict() == b.energy.as_dict()
        and a.search_delay == b.search_delay
        and a.cycle_time == b.cycle_time
    )


class TestArrayShmTransport:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_serial(self, workers):
        rng = np.random.default_rng(11)
        keys = [random_word(32, rng, x_fraction=0.2) for _ in range(25)]
        serial_array, par_array = _loaded_array(), _loaded_array()
        serial = serial_array.search_batch(keys)
        par = par_array.search_batch(keys, workers=workers)
        assert all(_outcomes_equal(a, b) for a, b in zip(serial, par))
        assert [a.miss_histogram for a in serial] == [b.miss_histogram for b in par]
        assert serial_array.ml_cache_stats() == par_array.ml_cache_stats()
        assert serial_array._last_drive == par_array._last_drive
        stats = last_payload_stats()
        if workers > 1 and shared_memory_available():
            assert stats["transport"] == "shm"
            assert stats["shared_bytes"] > 0

    def test_chunk_payload_excludes_bulk_counts(self):
        """Per-chunk pickles carry metadata only, not the count planes."""
        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        rows, cols, n_keys = 64, 48, 64
        array = _loaded_array(rows=rows, cols=cols, seed=5)
        rng = np.random.default_rng(7)
        array.search_batch(
            [random_word(cols, rng, x_fraction=0.2) for _ in range(n_keys)],
            workers=2,
        )
        stats = last_payload_stats()
        assert stats["transport"] == "shm"
        # The dense count planes alone are n_keys x (cols+1) int64 each;
        # they travel through the arena, not the per-chunk pickle.
        assert stats["shared_bytes"] >= n_keys * (cols + 1) * 8
        assert all(b < stats["shared_bytes"] for b in stats["chunk_bytes"])


class TestChipShmTransport:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_serial(self, workers):
        rng = np.random.default_rng(3)
        keys = [random_word(16, rng) for _ in range(21)]
        banks = [int(b) for b in np.random.default_rng(4).integers(0, 3, size=21)]
        serial = _fresh_chip().search_batch(keys, banks, idle_time=1e-6, workers=1)
        par = _fresh_chip().search_batch(keys, banks, idle_time=1e-6, workers=workers)
        for a, b in zip(serial, par):
            assert a.bank == b.bank
            assert a.row == b.row
            assert a.latency == b.latency
            assert a.energy.as_dict() == b.energy.as_dict()
        if workers > 1 and shared_memory_available():
            assert last_payload_stats()["transport"] == "shm"
