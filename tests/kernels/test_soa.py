"""SoAState: matmul mismatch counts and uniformity gating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import KernelError
from repro.faults.faultmap import FaultMap
from repro.kernels import SoAState
from repro.tcam import ArrayGeometry, mismatch_counts_batch, pack_keys
from repro.tcam.trit import random_word


def _loaded(rows=24, cols=20, seed=5, x_fraction=0.25):
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows=rows, cols=cols))
    rng = np.random.default_rng(seed)
    for i in range(rows):
        array.write(i, random_word(cols, rng, x_fraction))
    return array


class TestMismatchCounts:
    @pytest.mark.parametrize("x_fraction", [0.0, 0.25, 0.6])
    def test_matches_reference_broadcast_counts(self, x_fraction):
        """Matmul counts equal the legacy broadcast counts bitwise."""
        array = _loaded(x_fraction=0.3)
        soa = SoAState.from_array(array, version=0)
        rng = np.random.default_rng(17)
        packed = pack_keys([random_word(20, rng, x_fraction) for _ in range(40)])
        expected = mismatch_counts_batch(array._stored, packed)
        got = soa.mismatch_counts(packed)
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_planes_are_contiguous_float32(self):
        soa = SoAState.from_array(_loaded(), version=0)
        for plane in (soa.plane0_t, soa.plane1_t):
            assert plane.dtype == np.float32
            assert plane.flags["C_CONTIGUOUS"]

    def test_shape_mismatch_raises(self):
        soa = SoAState.from_array(_loaded(cols=20), version=0)
        with pytest.raises(KernelError):
            soa.mismatch_counts(np.zeros((3, 21), dtype=np.int8))


class TestUniformity:
    def test_nominal_array_is_uniform(self):
        soa = SoAState.from_array(_loaded(), version=0)
        assert soa.is_uniform()

    def test_sa_offset_breaks_uniformity(self):
        array = _loaded()
        faults = FaultMap(array.geometry.rows, array.geometry.cols)
        faults.set_sa_offset(3, 0.02)
        array.attach_faults(faults)
        soa = SoAState.from_array(array, version=1)
        assert not soa.is_uniform()

    def test_empty_fault_map_stays_uniform(self):
        array = _loaded()
        array.attach_faults(FaultMap(array.geometry.rows, array.geometry.cols))
        soa = SoAState.from_array(array, version=1)
        assert soa.is_uniform()

    def test_snapshot_copies_do_not_alias(self):
        """Mutating the array after the snapshot must not change it."""
        array = _loaded()
        soa = SoAState.from_array(array, version=0)
        valid_before = soa.valid.copy()
        array.invalidate(0)
        assert np.array_equal(soa.valid, valid_before)
