"""WaveformTable: tabulated RK4 endpoints + monotone interpolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.rc import discharge_waveform
from repro.core import all_designs, build_array, get_design
from repro.errors import KernelError
from repro.kernels import WaveformTable
from repro.tcam import ArrayGeometry

PRECHARGE = [spec.name for spec in all_designs() if spec.sensing == "precharge"]


def _table_for(design_name: str, cols: int = 12, max_driven: int | None = None):
    array = build_array(get_design(design_name), ArrayGeometry(rows=4, cols=cols))
    assert array.sensing == "precharge"
    return array, WaveformTable(
        array.c_ml,
        array.cell.i_pulldown,
        array.cell.i_leak,
        array.precharge.target_voltage(),
        array.t_eval,
        max_driven=cols if max_driven is None else max_driven,
    )


class TestTableConstruction:
    @pytest.mark.parametrize("design", PRECHARGE)
    def test_endpoints_match_scalar_rk4_exactly(self, design):
        """Every tabulated endpoint equals the scalar reference bitwise."""
        array, table = _table_for(design)
        t_grid = np.linspace(0.0, array.t_eval, 65)
        for driven in (0, 1, 5, 12):
            v_ends = table.row(driven)
            assert v_ends.shape == (driven + 1,)
            for n_miss in range(driven + 1):
                n_match = driven - n_miss

                def current(v, n_miss=n_miss, n_match=n_match):
                    total = 0.0
                    if n_miss:
                        total += n_miss * array.cell.i_pulldown(v)
                    if n_match:
                        total += n_match * array.cell.i_leak(v)
                    return total

                if driven == 0:
                    expected = array.precharge.target_voltage()
                else:
                    expected = float(
                        discharge_waveform(
                            array.c_ml,
                            current,
                            array.precharge.target_voltage(),
                            t_grid,
                        )[-1]
                    )
                assert table.v_end(n_miss, driven) == expected

    def test_rows_are_lazy_and_cached(self):
        _, table = _table_for("fefet2t")
        assert table.rows_built == 0
        row = table.row(4)
        assert table.rows_built == 1
        assert table.row(4) is row
        table.precompute()
        assert table.rows_built == 13  # drivens 0..12
        assert table.classes_tabulated == sum(d + 1 for d in range(13))

    def test_rows_are_read_only(self):
        _, table = _table_for("fefet2t")
        with pytest.raises(ValueError):
            table.row(3)[0] = 0.0

    def test_out_of_grid_raises(self):
        _, table = _table_for("fefet2t", max_driven=4)
        assert table.in_grid(0, 4) and not table.in_grid(0, 5)
        with pytest.raises(KernelError):
            table.row(5)
        with pytest.raises(KernelError):
            table.v_end(6, 4)


class TestValidation:
    @pytest.mark.parametrize("design", PRECHARGE)
    def test_validates_within_budget(self, design):
        _, table = _table_for(design, cols=8)
        table.precompute()
        worst = table.validate(rtol=1e-9)
        # The table is built through the batched integrator, which is
        # elementwise identical to the scalar reference -- so the error
        # is not merely within budget but exactly zero.
        assert worst == 0.0

    def test_validate_raises_over_budget(self):
        _, table = _table_for("fefet2t", cols=6)
        table.precompute([3])
        # Corrupt one tabulated endpoint; validation must catch it.
        row = table._rows[3]
        row.setflags(write=True)
        row[1] *= 1.0 + 1e-6
        row.setflags(write=False)
        with pytest.raises(KernelError):
            table.validate(rtol=1e-9)


class TestInterpolation:
    def test_integer_queries_hit_table_exactly(self):
        _, table = _table_for("fefet2t")
        for n in range(9):
            assert table.v_end_interp(float(n), 8) == table.v_end(n, 8)

    def test_fractional_queries_are_monotone(self):
        """More mismatches discharge harder: interpolant must not overshoot."""
        _, table = _table_for("fefet2t")
        driven = 10
        grid = [table.v_end(n, driven) for n in range(driven + 1)]
        for n in range(driven):
            lo, hi = sorted((grid[n], grid[n + 1]))
            for frac in (0.25, 0.5, 0.75):
                v = table.v_end_interp(n + frac, driven)
                assert lo <= v <= hi
        # And the interpolant is (non-strictly) decreasing along a fine
        # sweep, matching the physical decay of v_end with n_miss.
        xs = np.linspace(0.0, driven, 101)
        vs = np.array([table.v_end_interp(float(x), driven) for x in xs])
        assert np.all(np.diff(vs) <= 1e-12)
