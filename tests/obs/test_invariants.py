"""End-to-end observability invariants.

The load-bearing property of the whole layer: for every traced search,
the span tree's recursively merged energy reproduces the returned
outcome's :class:`EnergyLedger` *exactly* -- same components, same
floats, same total -- because instrumentation only ever slices and
re-merges the outcome's own ledger in insertion order.  And with no
session active, the instrumented code must be a bit-for-bit no-op.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import build_array, get_design
from repro.tcam import ArrayGeometry, BaseOutcome, TCAMArray, TCAMChip
from repro.tcam.bank import HierarchicalBank, SegmentedBank
from repro.tcam.cells import FeFET2TCell
from repro.tcam.chip import GatingPolicy
from repro.tcam.trit import random_word


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test here must leave observability globally disabled."""
    assert not obs.is_enabled()
    yield
    assert not obs.is_enabled()


def _loaded_array(rng, rows=16, cols=16, design="fefet2t"):
    array = build_array(get_design(design), ArrayGeometry(rows, cols))
    array.load([random_word(cols, rng, x_fraction=0.2) for _ in range(rows)])
    return array


class TestSpanSumEqualsOutcomeLedger:
    def test_scalar_search_exact(self, rng):
        array = _loaded_array(rng)
        with obs.observe() as sess:
            out = array.search(random_word(16, rng))
        (root,) = sess.spans
        assert root.name == "array.search"
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total

    def test_scalar_search_current_race_exact(self, rng):
        array = _loaded_array(rng, design="fefet_cr")
        with obs.observe() as sess:
            out = array.search(random_word(16, rng))
        (root,) = sess.spans
        assert root.total_energy().total == out.energy.total

    def test_batched_search_merged_ledger_exact(self, rng):
        array = _loaded_array(rng)
        keys = [random_word(16, rng) for _ in range(12)]
        with obs.observe() as sess:
            outcomes = array.search_batch(keys)
        (root,) = sess.spans
        assert root.name == "array.search_batch"
        from repro.energy.accounting import EnergyLedger

        merged = EnergyLedger.sum(o.energy for o in outcomes)
        assert root.total_energy().as_dict() == merged.as_dict()
        assert root.total_energy().total == pytest.approx(
            sum(o.energy.total for o in outcomes), rel=1e-12
        )

    def test_segmented_search_exact(self, rng):
        bank = SegmentedBank(FeFET2TCell(), ArrayGeometry(16, 16), probe_cols=4)
        bank.load([random_word(16, rng) for _ in range(16)])
        with obs.observe() as sess:
            out = bank.search(random_word(16, rng))
        (root,) = sess.spans
        assert root.name == "bank.search"
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total

    def test_segmented_stage_spans_nest(self, rng):
        bank = SegmentedBank(FeFET2TCell(), ArrayGeometry(16, 16), probe_cols=4)
        bank.load([random_word(16, rng) for _ in range(16)])
        with obs.observe() as sess:
            bank.search(random_word(16, rng))
        names = [n.name for _, n in sess.spans[0].walk()]
        assert "bank.stage1" in names
        assert "array.search" in names

    def test_hierarchical_search_exact(self, rng):
        bank = HierarchicalBank(
            FeFET2TCell(), ArrayGeometry(16, 16), segment_cols=[4, 4, 8]
        )
        bank.load([random_word(16, rng) for _ in range(16)])
        with obs.observe() as sess:
            out = bank.search(random_word(16, rng))
        (root,) = sess.spans
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total

    def test_chip_search_exact_including_wake_and_idle(self, rng):
        cell = FeFET2TCell()
        geo = ArrayGeometry(16, 16)
        chip = TCAMChip(
            lambda: TCAMArray(cell, geo),
            n_banks=2,
            gating=GatingPolicy(gate_idle_banks=True),
        )
        chip.load([random_word(16, rng) for _ in range(8)])
        with obs.observe() as sess:
            out = chip.search(random_word(16, rng), bank=0, idle_time=1e-6)
        root = sess.spans[-1]
        assert root.name == "chip.search"
        # The wake/idle overhead is the chip span's own energy; the rest
        # arrives through the nested array span.
        assert root.energy.total > 0.0
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total

    def test_nearest_match_exact(self, rng):
        array = _loaded_array(rng)
        with obs.observe() as sess:
            out = array.nearest_match(random_word(16, rng))
        (root,) = sess.spans
        assert root.name == "array.nearest_match"
        assert root.total_energy().as_dict() == out.energy.as_dict()
        assert root.total_energy().total == out.energy.total

    def test_span_delay_matches_outcome(self, rng):
        array = _loaded_array(rng)
        with obs.observe() as sess:
            out = array.search(random_word(16, rng))
        assert sess.spans[0].delay == out.search_delay


class TestMetricsAgreeWithInternals:
    def test_cache_counters_match_trajectory_cache(self, rng):
        array = _loaded_array(rng)
        keys = [random_word(16, rng) for _ in range(10)]
        with obs.observe() as sess:
            array.search_batch(keys)
            array.search_batch(keys)  # second batch hits the cache
        snap = sess.metrics.snapshot()
        stats = array.ml_cache_stats()
        assert snap["mlcache.hits"] == stats["hits"]
        assert snap["mlcache.misses"] == stats["misses"]
        assert snap["mlcache.evictions"] == stats["evictions"]
        assert snap["mlcache.hits"] > 0

    def test_cache_counters_only_deltas_inside_session(self, rng):
        array = _loaded_array(rng)
        keys = [random_word(16, rng) for _ in range(10)]
        array.search_batch(keys)  # unobserved traffic
        before = array.ml_cache_stats()
        with obs.observe() as sess:
            array.search_batch(keys)
        snap = sess.metrics.snapshot()
        stats = array.ml_cache_stats()
        assert snap["mlcache.hits"] == stats["hits"] - before["hits"]
        assert snap["mlcache.misses"] == stats["misses"] - before["misses"]

    def test_search_and_energy_counters(self, rng):
        array = _loaded_array(rng)
        keys = [random_word(16, rng) for _ in range(6)]
        with obs.observe() as sess:
            outcomes = array.search_batch(keys)
        snap = sess.metrics.snapshot()
        assert snap["tcam.searches"] == 6.0
        assert snap["tcam.batch_size"]["count"] == 1
        assert snap["tcam.batch_size"]["sum"] == 6.0
        total_joules = sum(
            v for k, v in snap.items() if k.startswith("energy.")
        )
        assert total_joules == pytest.approx(
            sum(o.energy.total for o in outcomes), rel=1e-12
        )

    def test_rk4_metrics_present(self, rng):
        array = _loaded_array(rng)
        with obs.observe() as sess:
            array.search_batch([random_word(16, rng) for _ in range(4)])
        snap = sess.metrics.snapshot()
        assert snap["rk4.batched_integrations"] >= 1.0
        assert snap["rk4.steps"] > 0.0

    def test_write_counters(self, rng):
        array = TCAMArray(FeFET2TCell(), ArrayGeometry(8, 8))
        with obs.observe() as sess:
            array.write(0, random_word(8, rng))
        snap = sess.metrics.snapshot()
        assert snap["tcam.writes"] == 1.0
        assert snap["mlcache.invalidations"] == 1.0


class TestDisabledPathIsFree:
    def test_no_session_no_spans_registered(self, rng):
        array = _loaded_array(rng)
        array.search(random_word(16, rng))
        assert obs.session() is None
        assert obs.metrics() is None

    def test_outcomes_identical_with_and_without_observation(self, rng):
        state = rng.bit_generator.state
        plain = _loaded_array(rng)
        rng.bit_generator.state = state
        observed = _loaded_array(rng)
        key_rng = np.random.default_rng(7)
        keys = [random_word(16, key_rng) for _ in range(8)]
        plain_out = plain.search_batch(keys)
        with obs.observe():
            observed_out = observed.search_batch(keys)
        for a, b in zip(plain_out, observed_out):
            assert np.array_equal(a.match_mask, b.match_mask)
            assert a.first_match == b.first_match
            assert a.energy.as_dict() == b.energy.as_dict()
            assert a.search_delay == b.search_delay

    def test_outcome_ledgers_carry_no_extra_entries_when_traced(self, rng):
        """Tracing reads the outcome ledger; it must never append to it."""
        array = _loaded_array(rng)
        key = random_word(16, rng)
        with obs.observe():
            traced = array.search(key)
        untraced = array.search(key)
        assert traced.energy.components() == untraced.energy.components()

    def test_sessions_nest_and_restore(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                assert obs.session() is inner
            assert obs.session() is outer
        assert obs.session() is None

    def test_enable_disable_round_trip(self):
        sess = obs.enable()
        assert obs.is_enabled() and obs.session() is sess
        obs.disable()
        assert not obs.is_enabled()


class TestOutcomeApiUniformity:
    def _all_outcomes(self, rng):
        array = _loaded_array(rng)
        scalar = array.search(random_word(16, rng))
        nearest = array.nearest_match(random_word(16, rng))
        bank = SegmentedBank(FeFET2TCell(), ArrayGeometry(16, 16), probe_cols=4)
        bank.load([random_word(16, rng) for _ in range(16)])
        segmented = bank.search(random_word(16, rng))
        chip = TCAMChip(lambda: TCAMArray(FeFET2TCell(), ArrayGeometry(16, 16)), n_banks=2)
        chip.load([random_word(16, rng) for _ in range(8)])
        chipped = chip.search(random_word(16, rng), bank=0)
        return [scalar, nearest, segmented, chipped]

    def test_all_outcomes_share_base(self, rng):
        for out in self._all_outcomes(rng):
            assert isinstance(out, BaseOutcome)

    def test_to_dict_canonical_keys_lead(self, rng):
        canonical = [
            "schema_version", "type", "match_mask", "first_match",
            "energy", "energy_total", "search_delay", "cycle_time",
        ]
        for out in self._all_outcomes(rng):
            d = out.to_dict()
            assert list(d)[: len(canonical)] == canonical
            assert d["schema_version"] == 1
            assert d["type"] == type(out).__name__
            assert d["energy_total"] == out.energy.total
            assert isinstance(d["energy"], dict)

    def test_to_dict_json_serializable(self, rng):
        import json

        for out in self._all_outcomes(rng):
            json.dumps(out.to_dict())

    def test_chip_outcome_delegates(self, rng):
        chip = TCAMChip(lambda: TCAMArray(FeFET2TCell(), ArrayGeometry(16, 16)), n_banks=2)
        chip.load([random_word(16, rng) for _ in range(8)])
        out = chip.search(random_word(16, rng), bank=1)
        assert out.search_delay == out.latency
        assert out.first_match == out.row
        assert out.cycle_time == out.outcome.cycle_time
        assert np.array_equal(out.match_mask, out.outcome.match_mask)
