"""Tests for the metrics registry and its instruments."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative_and_nan(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1.0)
        with pytest.raises(ReproError):
            Counter("c").inc(float("nan"))

    def test_counter_accepts_zero(self):
        c = Counter("c")
        c.inc(0.0)
        assert c.value == 0.0

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_histogram_empty_mean_zero(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        assert "x" not in reg
        reg.counter("x").inc()
        assert "x" in reg
        assert len(reg) == 1

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(0.5)
        reg.histogram("c.sizes").observe(4.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.sizes"]
        assert snap["a.level"] == 0.5
        assert snap["b.count"] == 2.0
        assert snap["c.sizes"] == {
            "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0, "mean": 4.0,
            "p50": 4.0, "p95": 4.0, "p99": 4.0,
        }

    def test_snapshot_empty_histogram_none_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h"]["min"] is None and snap["h"]["max"] is None
        assert snap["h"]["p50"] is None and snap["h"]["p99"] is None


class TestHistogramQuantiles:
    def test_exact_quantiles_below_cap(self):
        import numpy as np

        h = Histogram("h")
        values = list(range(1, 101))
        for v in values:
            h.observe(float(v))
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, q)), abs=1e-12
            )

    def test_quantile_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            a.observe(v)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            b.observe(v)
        assert a.quantile(50.0) == b.quantile(50.0) == 3.0

    def test_quantile_validation(self):
        h = Histogram("h")
        with pytest.raises(ReproError):
            h.quantile(50.0)  # no samples yet
        h.observe(1.0)
        with pytest.raises(ReproError):
            h.quantile(101.0)

    def test_quantiles_dict_readout(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        qs = h.quantiles()
        assert set(qs) == {"p50", "p95", "p99"}
        assert qs["p50"] == pytest.approx(50.5)

    def test_thinning_is_deterministic_and_bounded(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        a, b = Histogram("a"), Histogram("b")
        n = HISTOGRAM_SAMPLE_CAP + 1000
        for i in range(n):
            a.observe(float(i))
            b.observe(float(i))
        assert a.samples == b.samples
        assert len(a.samples) <= HISTOGRAM_SAMPLE_CAP
        assert a.stride == 2
        assert a.count == n  # summary stats stay exact
        # Thinned quantiles stay close on a uniform ramp.
        assert a.quantile(50.0) == pytest.approx(n / 2, rel=0.01)

    def test_merge_concatenates_samples_in_chunk_order(self):
        serial = Histogram("s")
        for v in (1.0, 2.0, 3.0, 4.0):
            serial.observe(v)
        c0, c1 = Histogram("c0"), Histogram("c1")
        c0.observe(1.0)
        c0.observe(2.0)
        c1.observe(3.0)
        c1.observe(4.0)
        merged = Histogram("m")
        merged.merge(c0)
        merged.merge(c1)
        assert merged.samples == serial.samples
        assert merged.quantile(99.0) == serial.quantile(99.0)
