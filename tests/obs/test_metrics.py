"""Tests for the metrics registry and its instruments."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative_and_nan(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1.0)
        with pytest.raises(ReproError):
            Counter("c").inc(float("nan"))

    def test_counter_accepts_zero(self):
        c = Counter("c")
        c.inc(0.0)
        assert c.value == 0.0

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_histogram_empty_mean_zero(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        assert "x" not in reg
        reg.counter("x").inc()
        assert "x" in reg
        assert len(reg) == 1

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(0.5)
        reg.histogram("c.sizes").observe(4.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.sizes"]
        assert snap["a.level"] == 0.5
        assert snap["b.count"] == 2.0
        assert snap["c.sizes"] == {
            "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0, "mean": 4.0,
        }

    def test_snapshot_empty_histogram_none_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h"]["min"] is None and snap["h"]["max"] is None
