"""Tests for the trace/metrics exporters."""

from __future__ import annotations

import io
import json

import pytest

from repro.energy.accounting import EnergyLedger
from repro.obs.sinks import JsonLinesSink, NullSink, StdoutSummarySink, span_records
from repro.obs.span import Span


def _tree() -> Span:
    root = Span("chip.search")
    root.add_energy(EnergyLedger({"clock": 1.0}))
    child = root.child("array.search")
    child.add_energy(EnergyLedger({"sl": 2.0}))
    child.child("array.ml")
    return root


class TestSpanRecords:
    def test_flattens_with_parent_links(self):
        records = span_records([_tree()])
        assert [r["name"] for r in records] == [
            "chip.search", "array.search", "array.ml",
        ]
        assert [r["span_id"] for r in records] == [0, 1, 2]
        assert [r["parent_id"] for r in records] == [None, 0, 1]
        assert [r["depth"] for r in records] == [0, 1, 2]
        assert all("children" not in r for r in records)

    def test_multiple_roots_share_id_space(self):
        records = span_records([Span("a"), Span("b")])
        assert [(r["span_id"], r["parent_id"]) for r in records] == [(0, None), (1, None)]


class TestJsonLinesSink:
    def test_requires_exactly_one_target(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesSink()
        with pytest.raises(ValueError):
            JsonLinesSink(stream=io.StringIO(), path=str(tmp_path / "t.jsonl"))

    def test_stream_lines_parse(self):
        buf = io.StringIO()
        JsonLinesSink(stream=buf).export([_tree()], {"tcam.searches": 3.0})
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [rec["kind"] for rec in lines] == ["span", "span", "span", "metrics"]
        assert lines[0]["energy"] == {"clock": 1.0}
        assert lines[-1]["metrics"] == {"tcam.searches": 3.0}

    def test_path_written(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        JsonLinesSink(path=str(out)).export([_tree()], {})
        kinds = [json.loads(line)["kind"] for line in out.read_text().splitlines()]
        assert kinds == ["span", "span", "span", "metrics"]


class TestStdoutSummarySink:
    def test_prints_tree_and_metrics_tables(self, capsys):
        StdoutSummarySink().export(
            [_tree()],
            {"tcam.searches": 3.0,
             "tcam.batch_size": {"count": 1, "sum": 4.0, "min": 4.0, "max": 4.0, "mean": 4.0}},
        )
        out = capsys.readouterr().out
        assert "Trace spans" in out
        assert "  array.search" in out  # indented by depth
        assert "Metrics" in out
        assert "tcam.searches" in out

    def test_no_metrics_table_when_empty(self, capsys):
        StdoutSummarySink().export([_tree()], {})
        assert "Metrics" not in capsys.readouterr().out


class TestNullSink:
    def test_discards(self):
        NullSink().export([_tree()], {"x": 1.0})  # must not raise
