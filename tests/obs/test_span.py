"""Tests for the trace-span tree and its energy-exactness machinery."""

from __future__ import annotations

import pytest

from repro.energy.accounting import EnergyLedger
from repro.errors import ReproError
from repro.obs.span import Span, Tracer


class TestSpan:
    def test_rejects_empty_name(self):
        with pytest.raises(ReproError):
            Span("")

    def test_annotate_merges_attrs(self):
        s = Span("x", {"a": 1})
        s.annotate(b=2)
        assert s.attrs == {"a": 1, "b": 2}

    def test_set_delay_rejects_negative(self):
        with pytest.raises(ReproError):
            Span("x").set_delay(-1.0)

    def test_add_energy_copies(self):
        led = EnergyLedger({"sl": 1.0})
        s = Span("x")
        s.add_energy(led)
        led.add("sl", 1.0)
        assert s.energy.total == 1.0

    def test_child_appends_in_order(self):
        s = Span("root")
        s.child("a")
        s.child("b")
        assert [c.name for c in s.children] == ["a", "b"]

    def test_total_energy_merges_descendants(self):
        s = Span("root")
        s.add_energy(EnergyLedger({"a": 1.0}))
        s.child("c1").add_energy(EnergyLedger({"a": 2.0, "b": 1.0}))
        s.child("c2").add_energy(EnergyLedger({"b": 4.0}))
        total = s.total_energy()
        assert total.as_dict() == {"a": 3.0, "b": 5.0}

    def test_walk_preorder_depths(self):
        s = Span("root")
        c = s.child("a")
        c.child("aa")
        s.child("b")
        assert [(d, n.name) for d, n in s.walk()] == [
            (0, "root"), (1, "a"), (2, "aa"), (1, "b"),
        ]

    def test_to_dict_round_trip(self):
        s = Span("root", {"k": 1})
        s.child("a")
        d = s.to_dict()
        assert d["name"] == "root"
        assert d["attrs"] == {"k": 1}
        assert d["children"][0]["name"] == "a"


class TestSplitEnergy:
    def test_groups_components_in_insertion_order(self):
        led = EnergyLedger({"sl": 1.0, "ml_precharge": 2.0, "ml_dissipation": 3.0})
        s = Span("root")
        s.split_energy(led, {"sl": "drive", "ml_precharge": "ml", "ml_dissipation": "ml"})
        assert [c.name for c in s.children] == ["drive", "ml"]
        assert s.children[1].energy.as_dict() == {"ml_precharge": 2.0, "ml_dissipation": 3.0}

    def test_unmapped_components_land_in_other(self):
        s = Span("root")
        s.split_energy(EnergyLedger({"mystery": 1.0}), {}, prefix="p.")
        assert [c.name for c in s.children] == ["p.other"]

    def test_split_is_exact(self):
        led = EnergyLedger({"a": 0.1, "b": 0.2, "c": 0.30000000000000004})
        s = Span("root")
        s.split_energy(led, {"a": "x", "c": "x"})
        assert s.total_energy().as_dict() == led.as_dict()
        assert s.total_energy().total == led.total

    def test_split_does_not_mutate_source(self):
        led = EnergyLedger({"a": 1.0})
        Span("root").split_energy(led, {})
        assert led.as_dict() == {"a": 1.0}


class TestTracer:
    def test_nesting_builds_tree(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert len(tr.roots) == 1
        assert tr.roots[0].name == "outer"
        assert tr.roots[0].children[0].name == "inner"

    def test_sequential_spans_become_separate_roots(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r.name for r in tr.roots] == ["a", "b"]

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as sp:
            assert tr.current is sp
        assert tr.current is None

    def test_wall_time_measured(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        assert tr.roots[0].wall_time >= 0.0

    def test_root_recorded_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("a"):
                raise ValueError("boom")
        assert [r.name for r in tr.roots] == ["a"]

    def test_clear_drops_roots(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        tr.clear()
        assert tr.roots == []
