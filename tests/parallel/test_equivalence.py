"""Serial vs N-worker bit-identity for every parallelized consumer.

The contract under test: for any worker count, the parallel layer
produces results bit-identical to serial -- sampled MC margins, sweep
rows, batched search outcomes (ledgers included), the trajectory-cache
counters and the search-line drive state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Sweep, critical_keys, run_array_mc, run_margin_mc
from repro.analysis import montecarlo as mc_mod
from repro.core import build_array, get_design
from repro.devices.variability import NOMINAL_VARIATION
from repro.errors import AnalysisError
from repro.tcam import ArrayGeometry
from repro.tcam.chip import GatingPolicy, TCAMChip
from repro.tcam.trit import random_word

WORKER_COUNTS = (2, 4)


def _eval_square(v):
    return {"y": float(v) ** 2}


def _eval_fail_at_two(v):
    if v == 2:
        raise ValueError("deliberate")
    return {"y": float(v)}


class TestMonteCarloEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_margin_mc_bit_identical(self, workers, monkeypatch):
        # Small chunks so a small sample count still spans many chunks.
        monkeypatch.setattr(mc_mod, "MC_CHUNK_SAMPLES", 16)
        array = build_array(get_design("fefet2t"), ArrayGeometry(8, 16))
        serial = run_margin_mc(array, NOMINAL_VARIATION, n_samples=70, seed=7, workers=1)
        par = run_margin_mc(array, NOMINAL_VARIATION, n_samples=70, seed=7, workers=workers)
        assert np.array_equal(serial.margins, par.margins)
        assert np.array_equal(serial.failures, par.failures)
        assert serial.failure_rate == par.failure_rate
        assert serial.margin_mean == par.margin_mean
        assert serial.margin_sigma == par.margin_sigma

    def test_margin_mc_independent_of_chunk_boundary_only_workers(self, monkeypatch):
        # Same chunk size, different worker counts: identical streams.
        monkeypatch.setattr(mc_mod, "MC_CHUNK_SAMPLES", 16)
        array = build_array(get_design("fefet2t"), ArrayGeometry(8, 16))
        runs = [
            run_margin_mc(array, NOMINAL_VARIATION, n_samples=50, seed=3, workers=w)
            for w in (1, 2, 4)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].margins, other.margins)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_array_mc_bit_identical(self, workers):
        geo = ArrayGeometry(rows=8, cols=16)
        rng = np.random.default_rng(9)
        words = [random_word(geo.cols, rng, x_fraction=0.2) for _ in range(geo.rows)]
        keys = critical_keys(words, rng, per_word=2)
        serial = run_array_mc(
            geo, NOMINAL_VARIATION, words, keys, n_instances=3, seed=5, workers=1
        )
        par = run_array_mc(
            geo, NOMINAL_VARIATION, words, keys, n_instances=3, seed=5, workers=workers
        )
        assert serial == par


class TestSweepEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_rows_identical(self, workers):
        serial = Sweep(knob="v", values=[0.5, 0.7, 0.9, 1.1], evaluate=_eval_square).run()
        par = Sweep(knob="v", values=[0.5, 0.7, 0.9, 1.1], evaluate=_eval_square).run(
            workers=workers
        )
        assert serial.rows == par.rows
        assert serial.knob == par.knob

    def test_lambda_evaluator_still_works_with_workers(self):
        # Unpicklable evaluators silently fall back to the serial path.
        sweep = Sweep(knob="n", values=[1, 2, 3], evaluate=lambda n: {"y": n * 3.0})
        assert sweep.run(workers=4).column("y") == [3.0, 6.0, 9.0]

    @pytest.mark.parametrize("workers", (1, 2))
    def test_evaluator_exception_names_knob_value(self, workers):
        sweep = Sweep(knob="freq", values=[1, 2, 3], evaluate=_eval_fail_at_two)
        with pytest.raises(AnalysisError, match=r"freq=2.*deliberate"):
            sweep.run(workers=workers)

    def test_knob_conflict_detected_with_workers(self):
        sweep = Sweep(knob="n", values=[1], evaluate=lambda n: {"n": 99})
        with pytest.raises(AnalysisError, match="conflicting"):
            sweep.run(workers=2)


def _loaded_array(design="fefet2t", rows=16, cols=32):
    array = build_array(get_design(design), ArrayGeometry(rows, cols))
    content_rng = np.random.default_rng(1)
    array.load([random_word(cols, content_rng, x_fraction=0.25) for _ in range(rows)])
    return array


def _outcomes_equal(a, b) -> bool:
    return (
        np.array_equal(a.match_mask, b.match_mask)
        and a.first_match == b.first_match
        and a.energy.as_dict() == b.energy.as_dict()
        and a.search_delay == b.search_delay
        and a.cycle_time == b.cycle_time
    )


class TestArraySearchBatchEquivalence:
    @pytest.mark.parametrize("design", ["fefet2t", "fefet_cr"])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_outcomes_cache_and_drive_state(self, design, workers):
        rng = np.random.default_rng(11)
        keys = [random_word(32, rng) for _ in range(25)]
        serial_array, par_array = _loaded_array(design), _loaded_array(design)
        serial = serial_array.search_batch(keys)
        par = par_array.search_batch(keys, workers=workers)
        assert all(_outcomes_equal(a, b) for a, b in zip(serial, par))
        assert [a.miss_histogram for a in serial] == [b.miss_histogram for b in par]
        assert serial_array.ml_cache_stats() == par_array.ml_cache_stats()
        assert serial_array._last_drive == par_array._last_drive

    def test_consecutive_batches_share_cache_identically(self):
        rng = np.random.default_rng(4)
        keys_a = [random_word(32, rng) for _ in range(10)]
        keys_b = [random_word(32, rng) for _ in range(10)]
        serial_array, par_array = _loaded_array(), _loaded_array()
        serial_array.search_batch(keys_a)
        par_array.search_batch(keys_a, workers=2)
        serial = serial_array.search_batch(keys_b)
        par = par_array.search_batch(keys_b, workers=2)
        assert all(_outcomes_equal(a, b) for a, b in zip(serial, par))
        assert serial_array.ml_cache_stats() == par_array.ml_cache_stats()


class TestChipSearchBatchEquivalence:
    def _fresh_chip(self):
        geo = ArrayGeometry(rows=8, cols=16)
        chip = TCAMChip(
            lambda: build_array(get_design("fefet2t"), geo),
            n_banks=3,
            gating=GatingPolicy(gate_idle_banks=True),
        )
        words_rng = np.random.default_rng(2)
        chip.load(
            [random_word(geo.cols, words_rng, x_fraction=0.2) for _ in range(20)]
        )
        return chip

    def _workload(self, n=21):
        rng = np.random.default_rng(3)
        keys = [random_word(16, rng) for _ in range(n)]
        banks = [int(b) for b in np.random.default_rng(4).integers(0, 3, size=n)]
        return keys, banks

    def test_batch_equals_scalar_loop_exactly(self):
        keys, banks = self._workload()
        scalar_chip, batch_chip = self._fresh_chip(), self._fresh_chip()
        scalar = [
            scalar_chip.search(k, b, idle_time=1e-6) for k, b in zip(keys, banks)
        ]
        batch = batch_chip.search_batch(keys, banks, idle_time=1e-6)
        for a, b in zip(scalar, batch):
            assert a.bank == b.bank and a.row == b.row
            assert a.latency == b.latency
            assert a.energy.as_dict() == b.energy.as_dict()
            assert np.array_equal(a.match_mask, b.match_mask)
        assert np.array_equal(scalar_chip._powered, batch_chip._powered)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_workers_bit_identical(self, workers):
        keys, banks = self._workload()
        serial_chip, par_chip = self._fresh_chip(), self._fresh_chip()
        serial = serial_chip.search_batch(keys, banks, idle_time=1e-6, workers=1)
        par = par_chip.search_batch(keys, banks, idle_time=1e-6, workers=workers)
        for a, b in zip(serial, par):
            assert a.bank == b.bank and a.row == b.row
            assert a.latency == b.latency
            assert a.energy.as_dict() == b.energy.as_dict()
            assert np.array_equal(a.match_mask, b.match_mask)
        # Bank-internal state advanced identically (cache hit counters and
        # search-line drive chains are part of the contract).
        for i in range(serial_chip.n_banks):
            assert (
                serial_chip.banks[i].ml_cache_stats()
                == par_chip.banks[i].ml_cache_stats()
            )
            assert serial_chip.banks[i]._last_drive == par_chip.banks[i]._last_drive
        assert np.array_equal(serial_chip._powered, par_chip._powered)

    def test_single_bank_broadcast(self):
        keys, _ = self._workload(8)
        chip_a, chip_b = self._fresh_chip(), self._fresh_chip()
        a = chip_a.search_batch(keys, 1, workers=1)
        b = chip_b.search_batch(keys, 1, workers=2)
        assert [o.energy.total for o in a] == [o.energy.total for o in b]
        assert all(o.bank == 1 for o in a)
