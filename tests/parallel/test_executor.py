"""Unit tests for the process-parallel executor primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.errors import ParallelError
from repro.parallel import (
    chunk_bounds,
    default_chunk_size,
    map_chunks,
    resolve_workers,
    scatter_gather,
    spawn_seeds,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert not obs.is_enabled()
    yield
    assert not obs.is_enabled()


# Worker functions must live at module level to pickle into real processes.
def _square(x: int) -> int:
    return x * x


def _sum_chunk(items: list[int]) -> list[int]:
    return [i + 1 for i in items]


def _traced_square(x: int) -> int:
    m = obs.metrics()
    if m is not None:
        m.counter("test.calls").inc()
    with obs.span("test.work", x=x):
        return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom at {x}")


class TestChunkBounds:
    def test_partitions_exactly(self):
        bounds = chunk_bounds(10, 4)
        assert bounds == [(0, 4), (4, 8), (8, 10)]
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_single_chunk_when_size_exceeds_items(self):
        assert chunk_bounds(3, 100) == [(0, 3)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == []

    def test_bounds_never_depend_on_worker_count(self):
        # The partition is a pure function of (n_items, chunk_size).
        assert chunk_bounds(100, 7) == chunk_bounds(100, 7)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ParallelError):
            chunk_bounds(-1, 4)
        with pytest.raises(ParallelError):
            chunk_bounds(10, 0)

    def test_default_chunk_size(self):
        assert default_chunk_size(0) == 1
        assert default_chunk_size(5) == 1
        assert default_chunk_size(160) == 10
        with pytest.raises(ParallelError):
            default_chunk_size(-1)


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        a = spawn_seeds(42, 4)
        b = spawn_seeds(42, 4)
        draws_a = [np.random.default_rng(s).random(3).tolist() for s in a]
        draws_b = [np.random.default_rng(s).random(3).tolist() for s in b]
        assert draws_a == draws_b
        # Children are mutually distinct streams.
        assert len({tuple(d) for d in draws_a}) == 4

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(7)
        assert len(spawn_seeds(root, 2)) == 2

    def test_invalid_count_raises(self):
        with pytest.raises(ParallelError):
            spawn_seeds(1, 0)


class TestResolveWorkers:
    def test_serial_values(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1
        assert resolve_workers(1) == 1

    def test_parallel_values(self):
        assert resolve_workers(2) == 2
        assert resolve_workers(8) == 8


class TestScatterGather:
    def test_empty(self):
        assert scatter_gather(_square, [], workers=4) == []

    def test_serial_matches_parallel(self):
        payloads = list(range(9))
        assert (
            scatter_gather(_square, payloads, workers=1)
            == scatter_gather(_square, payloads, workers=2)
            == scatter_gather(_square, payloads, workers=4)
            == [x * x for x in payloads]
        )

    def test_lambda_falls_back_to_serial(self):
        # Lambdas do not pickle; the pool is skipped, results still correct.
        assert scatter_gather(lambda x: x + 1, [1, 2, 3], workers=4) == [2, 3, 4]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom at 2"):
            scatter_gather(_boom, [2], workers=2, span_prefix="t")
        with pytest.raises(ValueError, match="boom at 1"):
            scatter_gather(_boom, [1, 2, 3], workers=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom at 1"):
            scatter_gather(_boom, [1], workers=1)


class TestMapChunks:
    def test_concatenates_in_order(self):
        items = list(range(23))
        out = map_chunks(_sum_chunk, items, workers=2, chunk_size=5)
        assert out == [i + 1 for i in items]

    def test_workers_do_not_change_result(self):
        items = list(range(40))
        results = {
            w: map_chunks(_sum_chunk, items, workers=w, chunk_size=7) for w in (1, 2, 4)
        }
        assert results[1] == results[2] == results[4]

    def test_empty(self):
        assert map_chunks(_sum_chunk, [], workers=4) == []


class TestObservabilityCapture:
    def test_chunk_spans_and_grafted_children(self):
        with obs.observe() as sess:
            scatter_gather(_traced_square, [1, 2, 3], workers=2, span_prefix="par")
        names = [sp.name for sp in sess.spans]
        assert names == ["par.chunk[0]", "par.chunk[1]", "par.chunk[2]"]
        for sp in sess.spans:
            assert [c.name for c in sp.children] == ["test.work"]

    def test_metrics_merged_equal_serial(self):
        with obs.observe() as serial:
            scatter_gather(_traced_square, [1, 2, 3, 4], workers=1)
        with obs.observe() as parallel:
            scatter_gather(_traced_square, [1, 2, 3, 4], workers=2)
        assert serial.metrics.snapshot() == parallel.metrics.snapshot()
        assert parallel.metrics.snapshot()["test.calls"] == 4.0

    def test_no_session_is_fine(self):
        assert scatter_gather(_traced_square, [3], workers=2) == [9]
