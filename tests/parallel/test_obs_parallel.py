"""Observability invariants under process parallelism.

Worker sessions are captured and grafted back into the parent span tree
(one ``<prefix>.chunk[i]`` child per chunk) and worker metric registries
merge in chunk order.  The PR-2 span-sum invariant must survive:

* **array level** -- a ``array.search_batch`` root's merged tree energy
  equals the summed outcome ledgers *exactly*, workers or not (the batch
  span owns the summed ledger; grafted chunks carry no energy).
* **chip level** -- the root's own energy (wake + idle leakage) and each
  bank chunk's subtree are individually float-exact; the full-tree total
  matches the merged outcome ledgers up to floating-point reassociation
  only (the tree groups joules per bank, the outcome merge per key), so
  equality is asserted per component at 1e-12 relative tolerance with an
  identical component set.
* **metrics** -- integer-valued counters match serial exactly; energy
  counters match to 1e-12 (same reassociation caveat).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.analysis import run_margin_mc
from repro.analysis import montecarlo as mc_mod
from repro.core import build_array, get_design
from repro.devices.variability import NOMINAL_VARIATION
from repro.energy.accounting import EnergyLedger
from repro.tcam import ArrayGeometry
from repro.tcam.chip import TCAMChip
from repro.tcam.trit import random_word


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert not obs.is_enabled()
    yield
    assert not obs.is_enabled()


def _loaded_array(rows=16, cols=32):
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows, cols))
    content_rng = np.random.default_rng(1)
    array.load([random_word(cols, content_rng, x_fraction=0.25) for _ in range(rows)])
    return array


class TestArrayInvariantUnderWorkers:
    def test_span_sum_equals_merged_ledgers_exactly(self):
        array = _loaded_array()
        keys = [random_word(32, np.random.default_rng(11)) for _ in range(18)]
        with obs.observe() as sess:
            outcomes = array.search_batch(keys, workers=2)
        (root,) = sess.spans
        assert root.name == "array.search_batch"
        merged = EnergyLedger.sum(o.energy for o in outcomes)
        assert root.total_energy().as_dict() == merged.as_dict()
        assert root.total_energy().total == merged.total

    def test_parallel_chunk_spans_carry_no_energy(self):
        array = _loaded_array()
        keys = [random_word(32, np.random.default_rng(11)) for _ in range(18)]
        with obs.observe() as sess:
            array.search_batch(keys, workers=2)
        (root,) = sess.spans
        chunk_spans = [c for c in root.children if ".chunk[" in c.name]
        assert chunk_spans, "parallel path must create chunk spans"
        for sp in chunk_spans:
            assert sp.total_energy().total == 0.0


class TestChipInvariantUnderWorkers:
    def _traced_batch(self, workers):
        geo = ArrayGeometry(rows=16, cols=32)
        chip = TCAMChip(lambda: build_array(get_design("fefet2t"), geo), n_banks=2)
        chip.load(
            [random_word(geo.cols, np.random.default_rng(2), x_fraction=0.2) for _ in range(32)]
        )
        keys = [random_word(geo.cols, np.random.default_rng(5)) for _ in range(12)]
        banks = [i % 2 for i in range(12)]
        with obs.observe() as sess:
            outcomes = chip.search_batch(keys, banks, idle_time=1e-7, workers=workers)
        (root,) = sess.spans
        return root, outcomes, banks

    @pytest.mark.parametrize("workers", (1, 2))
    def test_root_total_matches_merged_ledgers(self, workers):
        root, outcomes, banks = self._traced_batch(workers)
        assert root.name == "chip.search_batch"
        merged = EnergyLedger.sum(o.energy for o in outcomes).as_dict()
        total = root.total_energy().as_dict()
        # Same component set; per-component equal up to reassociation.
        assert set(total) == set(merged)
        for component, joules in merged.items():
            assert math.isclose(total[component], joules, rel_tol=1e-12)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_each_bank_chunk_exact(self, workers):
        root, outcomes, banks = self._traced_batch(workers)
        chunks = [c for c in root.children if c.name.startswith("chip.bank.chunk[")]
        assert len(chunks) == 2
        # Chunks are ordered by bank id; each subtree must reproduce the
        # summed bank-level outcome ledgers of that bank exactly.
        for bank_id, chunk in enumerate(chunks):
            bank_outcomes = [
                o.outcome for o, b in zip(outcomes, banks) if b == bank_id
            ]
            expected = EnergyLedger.sum(o.energy for o in bank_outcomes)
            assert chunk.total_energy().as_dict() == expected.as_dict()


class TestMetricsUnderWorkers:
    INTEGER_METRICS = (
        "tcam.searches",
        "chip.searches",
        "mlcache.hits",
        "mlcache.misses",
        "mlcache.evictions",
        "mc.samples",
    )

    def _snapshot(self, workers):
        array = _loaded_array()
        keys = [random_word(32, np.random.default_rng(7)) for _ in range(20)]
        with obs.observe() as sess:
            array.search_batch(keys, workers=workers)
        return sess.metrics.snapshot()

    def test_serial_vs_parallel_totals(self):
        serial = self._snapshot(1)
        par = self._snapshot(2)
        for name in serial:
            if name in self.INTEGER_METRICS:
                assert par[name] == serial[name], name
            elif name.startswith("energy."):
                assert math.isclose(par[name], serial[name], rel_tol=1e-12), name

    def test_mc_chunk_spans_and_metrics(self, monkeypatch):
        monkeypatch.setattr(mc_mod, "MC_CHUNK_SAMPLES", 16)
        array = build_array(get_design("fefet2t"), ArrayGeometry(8, 16))
        with obs.observe() as sess:
            run_margin_mc(array, NOMINAL_VARIATION, n_samples=40, seed=3, workers=2)
        names = [sp.name for sp in sess.spans]
        assert names == [f"mc.margin.chunk[{i}]" for i in range(3)]

    def test_disabled_obs_with_workers_is_fine(self):
        array = _loaded_array(rows=8, cols=16)
        keys = [random_word(16, np.random.default_rng(9)) for _ in range(8)]
        outcomes = array.search_batch(keys, workers=2)
        assert len(outcomes) == 8
        assert not obs.is_enabled()
