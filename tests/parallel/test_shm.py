"""Shared-memory transport: arena lifecycle, cleanup, bit-identity."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import (
    SharedArena,
    ShmSpec,
    attached,
    last_payload_stats,
    scatter_gather_shared,
    shared_memory_available,
)
from repro.parallel.executor import _get_pool
from repro.parallel.shm import _ARENAS, _cleanup_arenas

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory missing"
)

DEV_SHM = pathlib.Path("/dev/shm")


def _segment_exists(spec: ShmSpec) -> bool:
    if not DEV_SHM.is_dir():  # non-Linux: fall back to attach-probe
        try:
            with attached({"probe": spec}):
                return True
        except FileNotFoundError:
            return False
    return (DEV_SHM / spec.name).exists()


# Worker functions must live at module level to pickle into real processes.
def _slow_identity(i):
    import time

    time.sleep(0.05)
    return i


def _segment_sum(views, meta):
    lo, hi = meta
    return float(views["data"][lo:hi].sum())


def _row_dot(views, meta):
    row, scale = meta
    # Copy out: results must not reference the shared views.
    return (views["a"][row] * views["b"][row]).sum() * scale


def _boom_shared(views, meta):
    if meta >= 2:
        raise ValueError(f"boom at {meta}")
    return float(views["data"][meta])


class TestSharedArena:
    def test_share_attach_roundtrip(self):
        arena = SharedArena()
        try:
            payload = np.arange(24, dtype=np.float64).reshape(4, 6)
            spec = arena.share("data", payload)
            assert spec.shape == (4, 6)
            assert _segment_exists(spec)
            with attached(arena.specs) as views:
                assert np.array_equal(views["data"], payload)
                assert not views["data"].flags.writeable
        finally:
            arena.close()
        assert not _segment_exists(spec)

    def test_close_is_idempotent_and_share_after_close_raises(self):
        arena = SharedArena()
        arena.share("x", np.zeros(3))
        arena.close()
        arena.close()
        assert arena.closed
        with pytest.raises(ParallelError):
            arena.share("y", np.zeros(3))

    def test_nbytes_accounts_every_segment(self):
        arena = SharedArena()
        try:
            arena.share("a", np.zeros(10, dtype=np.float64))
            arena.share("b", np.zeros((2, 2), dtype=np.int8))
            assert arena.nbytes() >= 10 * 8 + 4
        finally:
            arena.close()

    def test_atexit_sweep_reclaims_unclosed_arena(self):
        """An arena whose owner never reached its finally block is
        unlinked by the module's atexit sweep."""
        arena = SharedArena()
        spec = arena.share("orphan", np.ones(7))
        assert arena in _ARENAS
        _cleanup_arenas()
        assert arena.closed
        assert not _segment_exists(spec)

    def test_interpreter_shutdown_drains_pools_before_arena_sweep(self, monkeypatch):
        """The single atexit hook must shut pools down (waiting) before
        unlinking arenas -- the reverse order races late worker attaches."""
        import repro.parallel as parallel

        calls: list = []
        monkeypatch.setattr(
            parallel._executor,
            "shutdown_pools",
            lambda wait=False: calls.append(("pools", wait)),
        )
        monkeypatch.setattr(
            parallel._shm, "_cleanup_arenas", lambda: calls.append(("arenas", None))
        )
        parallel._parallel_atexit()
        assert calls == [("pools", True), ("arenas", None)]

    def test_shm_module_registers_no_own_atexit_hook(self):
        """Ordering lives in one place: the shm module source must not
        register its own handler (import order would decide again)."""
        import inspect

        import repro.parallel.shm as shm

        assert "atexit.register" not in inspect.getsource(shm)

    def test_shutdown_pools_wait_drains_inflight_work(self):
        """shutdown_pools(wait=True) returns only after queued chunks ran."""
        from repro.parallel import executor as ex

        pool = ex._get_pool(2)
        futures = [pool.submit(_slow_identity, i) for i in range(4)]
        ex.shutdown_pools(wait=True)
        assert all(f.done() for f in futures)
        assert sorted(f.result() for f in futures) == [0, 1, 2, 3]

    def test_noncontiguous_input_roundtrips(self):
        arena = SharedArena()
        try:
            base = np.arange(20, dtype=np.int64).reshape(4, 5)
            strided = base[:, ::2]
            arena.share("s", strided)
            with attached(arena.specs) as views:
                assert np.array_equal(views["s"], strided)
        finally:
            arena.close()


class TestScatterGatherShared:
    def test_empty(self):
        assert scatter_gather_shared(_segment_sum, {"data": np.ones(4)}, []) == []

    def test_serial_matches_parallel(self):
        data = np.random.default_rng(3).normal(size=257)
        metas = [(lo, lo + 37) for lo in range(0, 220, 37)]
        serial = scatter_gather_shared(_segment_sum, {"data": data}, metas, workers=1)
        for workers in (2, 4):
            got = scatter_gather_shared(
                _segment_sum, {"data": data}, metas, workers=workers
            )
            assert got == serial, f"workers={workers} diverged from serial"
        assert serial == [float(data[lo:hi].sum()) for lo, hi in metas]

    def test_multiple_arrays(self):
        rng = np.random.default_rng(9)
        a, b = rng.normal(size=(6, 8)), rng.normal(size=(6, 8))
        metas = [(row, 1.0 + row) for row in range(6)]
        serial = scatter_gather_shared(_row_dot, {"a": a, "b": b}, metas, workers=1)
        parallel = scatter_gather_shared(_row_dot, {"a": a, "b": b}, metas, workers=2)
        assert parallel == serial

    def test_unpicklable_fn_falls_back_to_serial(self):
        data = np.arange(5, dtype=float)
        got = scatter_gather_shared(
            lambda views, m: float(views["data"][m]), {"data": data}, [0, 3], workers=4
        )
        assert got == [0.0, 3.0]

    def test_worker_exception_propagates_without_leaking(self):
        before = len(_ARENAS)
        with pytest.raises(ValueError, match="boom at 2"):
            scatter_gather_shared(
                _boom_shared, {"data": np.arange(4.0)}, [0, 1, 2, 3], workers=2
            )
        # The finally block closed the arena even though fn raised.
        assert len(_ARENAS) == before

    def test_payload_stats_record_shm_transport(self):
        data = np.zeros(1024, dtype=np.float64)
        scatter_gather_shared(
            _segment_sum, {"data": data}, [(0, 512), (512, 1024)], workers=2
        )
        stats = last_payload_stats()
        assert stats["transport"] == "shm"
        assert stats["chunks"] == 2
        assert stats["shared_bytes"] >= data.nbytes
        # Each chunk pickles only its meta, never the bulk array.
        assert all(b < 1024 for b in stats["chunk_bytes"])

    def test_serial_transport_recorded(self):
        scatter_gather_shared(_segment_sum, {"data": np.ones(4)}, [(0, 4)], workers=1)
        stats = last_payload_stats()
        assert stats["transport"] == "serial"
        assert stats["shared_bytes"] == 0


class TestWarmPools:
    def test_pool_is_reused_across_calls(self):
        pool = _get_pool(2)
        assert _get_pool(2) is pool
        data = np.arange(8.0)
        scatter_gather_shared(_segment_sum, {"data": data}, [(0, 4), (4, 8)], workers=2)
        assert _get_pool(2) is pool, "scatter/gather must not rebuild the warm pool"
