"""Tests for the benchmark-artifact aggregator."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.reporting.aggregate import aggregate_report, write_report


def _populate(tmp_path):
    (tmp_path / "R-T1_cells.txt").write_text("table one\n")
    (tmp_path / "R-F2_waveforms.txt").write_text("figure two\n")
    (tmp_path / "R-F10_temperature.txt").write_text("figure ten\n")
    return tmp_path


class TestAggregate:
    def test_includes_every_artifact(self, tmp_path):
        report = aggregate_report(_populate(tmp_path))
        assert "R-T1_cells" in report
        assert "figure two" in report
        assert "3 experiment artifacts" in report

    def test_figures_ordered_numerically_before_tables(self, tmp_path):
        report = aggregate_report(_populate(tmp_path))
        i_f2 = report.index("R-F2_waveforms")
        i_f10 = report.index("R-F10_temperature")
        i_t1 = report.index("R-T1_cells")
        assert i_f2 < i_f10 < i_t1  # numeric, not lexicographic; tables last

    def test_write_report_creates_file(self, tmp_path):
        out = tmp_path / "REPORT.md"
        path = write_report(_populate(tmp_path), out)
        assert path.exists()
        assert path.read_text().startswith("# Benchmark report")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            aggregate_report(tmp_path / "ghost")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            aggregate_report(tmp_path)

    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path)
        out = tmp_path / "R.md"
        assert main(["report", "--output-dir", str(tmp_path), "--out", str(out)]) == 0
        assert out.exists()
