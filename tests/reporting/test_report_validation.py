"""Benchmark-artifact schema validation behind ``repro report``."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.reporting.aggregate import (
    KNOWN_BENCH_ARTIFACTS,
    SUPPORTED_BENCH_SCHEMAS,
    validate_bench_artifacts,
)
from repro.tcam.outcome import SCHEMA_VERSION


def _write(path, record):
    path.write_text(json.dumps(record))


class TestValidateBenchArtifacts:
    def test_current_schema_accepted(self, tmp_path):
        _write(tmp_path / "BENCH_demo.json", {"schema_version": SCHEMA_VERSION})
        checked = validate_bench_artifacts(tmp_path)
        assert [p.name for p in checked] == ["BENCH_demo.json"]

    def test_paths_returned_sorted(self, tmp_path):
        for name in ("BENCH_zeta.json", "BENCH_alpha.json"):
            _write(tmp_path / name, {"schema_version": SCHEMA_VERSION})
        checked = validate_bench_artifacts(tmp_path)
        assert [p.name for p in checked] == ["BENCH_alpha.json", "BENCH_zeta.json"]

    def test_unknown_version_rejected(self, tmp_path):
        future = max(SUPPORTED_BENCH_SCHEMAS) + 1
        _write(tmp_path / "BENCH_future.json", {"schema_version": future})
        with pytest.raises(ReproError, match="unknown schema_version"):
            validate_bench_artifacts(tmp_path)

    def test_missing_version_rejected(self, tmp_path):
        _write(tmp_path / "BENCH_legacy.json", {"seed": 1, "rows": []})
        with pytest.raises(ReproError, match="schema_version"):
            validate_bench_artifacts(tmp_path)

    def test_non_object_record_rejected(self, tmp_path):
        _write(tmp_path / "BENCH_list.json", [1, 2, 3])
        with pytest.raises(ReproError, match="schema_version"):
            validate_bench_artifacts(tmp_path)

    def test_invalid_json_rejected(self, tmp_path):
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            validate_bench_artifacts(tmp_path)

    def test_empty_directory_is_fine(self, tmp_path):
        assert validate_bench_artifacts(tmp_path) == ()

    def test_unrelated_files_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text("{broken")
        _write(tmp_path / "BENCH_ok.json", {"schema_version": SCHEMA_VERSION})
        assert len(validate_bench_artifacts(tmp_path)) == 1

    def test_repo_artifacts_all_pass(self):
        """The checked-in BENCH_*.json records carry the current schema."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        checked = validate_bench_artifacts(repo_root)
        assert len(checked) >= 5

    def test_registry_matches_checked_in_artifacts(self):
        """Every registered artifact exists at the repo root, and vice versa."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        present = {p.name for p in validate_bench_artifacts(repo_root)}
        assert present == set(KNOWN_BENCH_ARTIFACTS)

    def test_registry_versions_supported(self):
        assert "BENCH_cluster.json" in KNOWN_BENCH_ARTIFACTS
        for name, version in KNOWN_BENCH_ARTIFACTS.items():
            assert version in SUPPORTED_BENCH_SCHEMAS, name

    def test_registry_artifact_versions_match_records(self):
        """Each checked-in record's schema_version equals its registry entry."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        for name, version in KNOWN_BENCH_ARTIFACTS.items():
            record = json.loads((repo_root / name).read_text())
            assert record["schema_version"] == version, name
