"""Tests for the figure-series container."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.reporting.series import FigureSeries


def _fig() -> FigureSeries:
    return FigureSeries(
        title="Energy vs width",
        x_label="width",
        y_label="energy [J]",
        x=[8, 16, 32],
        y_unit="J",
    )


class TestFigureSeries:
    def test_add_and_read_series(self):
        fig = _fig()
        fig.add_series("cmos", [1e-15, 2e-15, 4e-15])
        assert fig.series("cmos") == [1e-15, 2e-15, 4e-15]
        assert fig.series_names == ["cmos"]

    def test_length_mismatch_rejected(self):
        fig = _fig()
        with pytest.raises(ReproError):
            fig.add_series("bad", [1.0])

    def test_duplicate_name_rejected(self):
        fig = _fig()
        fig.add_series("a", [1, 2, 3])
        with pytest.raises(ReproError):
            fig.add_series("a", [1, 2, 3])

    def test_unknown_series_rejected(self):
        with pytest.raises(ReproError):
            _fig().series("ghost")

    def test_text_rendering_engineering_units(self):
        fig = _fig()
        fig.add_series("cmos", [1e-15, 2e-15, 4e-15])
        text = fig.to_text()
        assert "1 fJ" in text
        assert "width" in text
        assert "cmos" in text

    def test_text_without_series_rejected(self):
        with pytest.raises(ReproError):
            _fig().to_text()

    def test_plain_numbers_without_unit(self):
        fig = FigureSeries(title="t", x_label="x", y_label="y", x=[1.0])
        fig.add_series("s", [0.25])
        assert "0.25" in fig.to_text()

    def test_csv_round_trips_values(self):
        fig = _fig()
        fig.add_series("cmos", [1e-15, 2e-15, 4e-15])
        lines = fig.to_csv().splitlines()
        assert lines[0] == "width,cmos"
        assert float(lines[1].split(",")[1]) == 1e-15

    def test_csv_without_series_rejected(self):
        with pytest.raises(ReproError):
            _fig().to_csv()
