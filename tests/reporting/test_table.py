"""Tests for the table emitter."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.reporting.table import Table


class TestTable:
    def test_ascii_contains_headers_and_rows(self):
        t = Table(title="Cells", columns=["tech", "area"])
        t.add_row("cmos16t", 331)
        t.add_row("fefet2t", 74)
        text = t.to_ascii()
        assert "Cells" in text
        assert "cmos16t" in text and "74" in text

    def test_alignment_pads_columns(self):
        t = Table(title="", columns=["a", "long_header"])
        t.add_row("x", 1)
        lines = t.to_ascii().splitlines()
        header, sep, row = lines[0], lines[1], lines[2]
        assert len(header) == len(sep) == len(row)

    def test_markdown_shape(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2)
        md = t.to_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "| 1 | 2 |" in md

    def test_row_count(self):
        t = Table(title="", columns=["a"])
        assert t.n_rows == 0
        t.add_row(1)
        assert t.n_rows == 1

    def test_rejects_wrong_cell_count(self):
        t = Table(title="", columns=["a", "b"])
        with pytest.raises(ReproError):
            t.add_row(1)

    def test_rejects_no_columns(self):
        with pytest.raises(ReproError):
            Table(title="", columns=[])

    def test_str_is_ascii(self):
        t = Table(title="T", columns=["a"])
        t.add_row("v")
        assert str(t) == t.to_ascii()

    def test_csv_plain(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, "x")
        assert t.to_csv() == "a,b\n1,x"

    def test_csv_quotes_commas_and_quotes(self):
        t = Table(title="T", columns=["a"])
        t.add_row('hello, "world"')
        assert t.to_csv().splitlines()[1] == '"hello, ""world"""'
