"""Arrival-process generators: determinism, rates, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import (
    ARRIVAL_PROCESSES,
    diurnal_trace,
    mmpp_trace,
    poisson_trace,
)

COLS = 16


@pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
class TestEveryProcess:
    def test_same_seed_same_trace(self, name):
        gen = ARRIVAL_PROCESSES[name]
        a = gen(100, rate=1e6, cols=COLS, seed=11)
        b = gen(100, rate=1e6, cols=COLS, seed=11)
        assert np.array_equal(a.times, b.times)
        assert a.keys == b.keys
        assert np.array_equal(a.banks, b.banks)

    def test_different_seed_different_trace(self, name):
        gen = ARRIVAL_PROCESSES[name]
        a = gen(100, rate=1e6, cols=COLS, seed=1)
        b = gen(100, rate=1e6, cols=COLS, seed=2)
        assert not np.array_equal(a.times, b.times)

    def test_times_increase_and_iterate_in_seq_order(self, name):
        trace = ARRIVAL_PROCESSES[name](50, rate=1e6, cols=COLS, seed=5)
        assert np.all(np.diff(trace.times) >= 0.0)
        seqs = [seq for seq, _, _, _ in trace]
        assert seqs == list(range(50))

    def test_offered_rate_near_requested(self, name):
        trace = ARRIVAL_PROCESSES[name](4000, rate=1e6, cols=COLS, seed=9)
        assert trace.offered_rate == pytest.approx(1e6, rel=0.25)

    def test_banks_cover_range(self, name):
        trace = ARRIVAL_PROCESSES[name](200, rate=1e6, cols=COLS, seed=3, n_banks=4)
        assert set(np.unique(trace.banks)) <= {0, 1, 2, 3}
        assert len(set(np.unique(trace.banks))) > 1

    def test_key_width_matches_cols(self, name):
        trace = ARRIVAL_PROCESSES[name](5, rate=1e6, cols=COLS, seed=3)
        assert all(len(k) == COLS for k in trace.keys)


class TestValidation:
    def test_rejects_bad_counts_and_rates(self):
        with pytest.raises(ServeError):
            poisson_trace(0, rate=1e6, cols=COLS)
        with pytest.raises(ServeError):
            poisson_trace(10, rate=0.0, cols=COLS)
        with pytest.raises(ServeError):
            poisson_trace(10, rate=1e6, cols=0)
        with pytest.raises(ServeError):
            poisson_trace(10, rate=1e6, cols=COLS, n_banks=0)

    def test_mmpp_parameter_ranges(self):
        with pytest.raises(ServeError):
            mmpp_trace(10, rate=1e6, cols=COLS, burst_ratio=1.0)
        with pytest.raises(ServeError):
            mmpp_trace(10, rate=1e6, cols=COLS, burst_fraction=0.0)

    def test_diurnal_parameter_ranges(self):
        with pytest.raises(ServeError):
            diurnal_trace(10, rate=1e6, cols=COLS, amplitude=1.0)
        with pytest.raises(ServeError):
            diurnal_trace(10, rate=1e6, cols=COLS, period=0.0)


class TestBurstiness:
    def test_mmpp_is_burstier_than_poisson(self):
        """Squared coefficient of variation of interarrival gaps: the
        MMPP must exceed the Poisson baseline (which has CV^2 ~= 1)."""

        def cv2(times):
            gaps = np.diff(times)
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        p = poisson_trace(4000, rate=1e6, cols=COLS, seed=2)
        m = mmpp_trace(4000, rate=1e6, cols=COLS, seed=2, burst_ratio=10.0)
        assert cv2(m.times) > 1.5 > cv2(p.times) * 1.2

    def test_diurnal_rate_oscillates(self):
        """Windowed arrival counts must swing well beyond Poisson noise."""
        trace = diurnal_trace(6000, rate=1e6, cols=COLS, seed=8, amplitude=0.8)
        span = trace.times[-1] - trace.times[0]
        counts, _ = np.histogram(trace.times, bins=24)
        assert counts.max() > 1.5 * counts.min()
        assert span > 0.0
