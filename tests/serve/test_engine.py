"""Engine dispatch semantics: policy edge cases and conservation.

These cover the satellite checklist explicitly: ``max_wait=0`` means
immediate dispatch, a batch of one is served correctly, a graceful
shutdown drains the queue, and backpressure rejection accounting is
exact (``offered == completed + rejected``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import ServeError
from repro.serve import (
    AdaptivePolicy,
    AdmissionControl,
    ArrayBackend,
    FixedPolicy,
    ServeEngine,
    ServiceModel,
    make_policy,
    no_batching,
    poisson_trace,
    run_trace,
)
from repro.tcam import ArrayGeometry, random_word

COLS = 16


@pytest.fixture
def backend():
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows=8, cols=COLS))
    rng = np.random.default_rng(42)
    array.load([random_word(COLS, rng) for _ in range(8)])
    return ArrayBackend(array)


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return [random_word(COLS, rng) for _ in range(n)]


class TestDispatchSemantics:
    def test_max_wait_zero_dispatches_immediately(self, backend):
        """With max_wait=0 and an idle port, every request leaves alone:
        each arrival first flushes the previous one as a batch of 1."""
        engine = ServeEngine(backend, FixedPolicy(max_batch=64, max_wait=0.0))
        keys = _keys(4)
        records = []
        for seq, t in enumerate([0.0, 1.0, 2.0, 3.0]):
            records.extend(engine.offer(seq, t, keys[seq], 0))
        records.extend(engine.drain())
        assert [r.batch_size for r in records] == [1, 1, 1, 1]
        assert [r.dispatch for r in records] == [0.0, 1.0, 2.0, 3.0]
        assert all(r.queue_wait == 0.0 for r in records)

    def test_max_wait_zero_still_coalesces_behind_busy_port(self, backend):
        """Requests that pile up while the port is busy leave together
        even at max_wait=0 -- the classic baseline-batching behavior."""
        model = ServiceModel(t_overhead=10.0, e_overhead=0.0)
        engine = ServeEngine(backend, FixedPolicy(max_batch=64, max_wait=0.0), model=model)
        keys = _keys(4)
        records = []
        for seq, t in enumerate([0.0, 1.0, 2.0, 3.0]):
            records.extend(engine.offer(seq, t, keys[seq], 0))
        records.extend(engine.drain())
        # First request occupies the port ~10 s; the other three queued
        # behind it and dispatched as one batch when it freed up.
        assert records[0].batch_size == 1
        assert [r.batch_size for r in records[1:]] == [3, 3, 3]
        assert records[1].dispatch == pytest.approx(records[0].finish)

    def test_batch_of_one(self, backend):
        """A single offered request is served correctly on drain."""
        engine = ServeEngine(backend, make_policy("fixed", max_batch=8, max_wait=5.0))
        [key] = _keys(1)
        assert engine.offer(0, 2.0, key, 0) == []
        records = engine.drain()
        assert len(records) == 1
        rec = records[0]
        assert rec.seq == 0
        assert rec.batch_size == 1
        assert rec.dispatch == pytest.approx(7.0)  # arrival + frozen wait
        # latency = frozen wait + batch service time
        assert rec.latency == pytest.approx(5.0 + (rec.finish - rec.dispatch))
        engine.check_conservation()

    def test_full_batch_dispatches_at_fill_time(self, backend):
        """Hitting max_batch closes the window at the filling arrival,
        not at the head deadline."""
        engine = ServeEngine(backend, FixedPolicy(max_batch=3, max_wait=100.0))
        keys = _keys(4)
        records = []
        for seq, t in enumerate([0.0, 1.0, 2.0, 50.0]):
            records.extend(engine.offer(seq, t, keys[seq], 0))
        # The batch of 3 filled at t=2 and must have left before t=50.
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[0].dispatch == pytest.approx(2.0)
        records.extend(engine.drain())
        assert [r.seq for r in records] == [0, 1, 2, 3]

    def test_drain_flushes_partial_batches(self, backend):
        """Graceful shutdown: a half-full window dispatches on drain."""
        engine = ServeEngine(backend, FixedPolicy(max_batch=100, max_wait=1e9))
        keys = _keys(5)
        for seq in range(5):
            engine.offer(seq, float(seq), keys[seq], 0)
        assert engine.queued == 5
        records = engine.drain()
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        assert records[0].batch_size == 5
        assert engine.queued == 0
        engine.check_conservation()

    def test_requests_must_arrive_in_seq_order(self, backend):
        engine = ServeEngine(backend, no_batching())
        [key] = _keys(1)
        with pytest.raises(ServeError, match="trace order"):
            engine.offer(3, 0.0, key, 0)


class TestBackpressure:
    def test_rejection_accounting_is_exact(self, backend):
        """offered == completed + rejected, request by request."""
        trace = poisson_trace(400, rate=50e6, cols=COLS, seed=7)
        report = run_trace(
            backend,
            trace,
            no_batching(),
            admission=AdmissionControl(queue_capacity=4),
            model=ServiceModel(t_overhead=1e-6, e_overhead=0.0),
        )
        assert report.offered == 400
        assert report.rejected > 0
        assert report.offered == report.completed + report.rejected
        # Every request is accounted once: the served seqs and the
        # rejected seqs partition the trace exactly.
        served = {r.seq for r in report.records}
        shed = set(report.rejected_seqs)
        assert served.isdisjoint(shed)
        assert served | shed == set(range(400))

    def test_unbounded_queue_rejects_nothing(self, backend):
        trace = poisson_trace(200, rate=50e6, cols=COLS, seed=7)
        report = run_trace(
            backend, trace, no_batching(), admission=AdmissionControl(None)
        )
        assert report.rejected == 0
        assert report.completed == 200

    def test_conservation_check_requires_drained_queue(self, backend):
        engine = ServeEngine(backend, FixedPolicy(max_batch=4, max_wait=1e9))
        [key] = _keys(1)
        engine.offer(0, 0.0, key, 0)
        with pytest.raises(ServeError, match="drained"):
            engine.check_conservation()

    def test_queue_capacity_validation(self):
        with pytest.raises(ServeError):
            AdmissionControl(queue_capacity=0)


class TestPolicies:
    def test_policy_validation(self):
        with pytest.raises(ServeError):
            FixedPolicy(max_batch=0, max_wait=1.0)
        with pytest.raises(ServeError):
            FixedPolicy(max_batch=4, max_wait=-1.0)
        with pytest.raises(ServeError):
            AdaptivePolicy(max_batch=4, min_wait=2.0, max_wait=1.0)
        with pytest.raises(ServeError):
            AdaptivePolicy(max_batch=4, alpha=0.0)
        with pytest.raises(ServeError):
            make_policy("bogus")

    def test_adaptive_budget_tracks_rate(self):
        pol = AdaptivePolicy(max_batch=8, min_wait=0.0, max_wait=1e3, alpha=1.0)
        assert pol.wait_budget() == 1e3  # nothing observed yet
        pol.on_arrival(0.0)
        pol.on_arrival(2.0)  # gap 2 -> budget (8-1)*2
        assert pol.wait_budget() == pytest.approx(14.0)
        pol.on_arrival(2.5)  # alpha=1: budget follows the newest gap
        assert pol.wait_budget() == pytest.approx(3.5)

    def test_adaptive_budget_clamped(self):
        pol = AdaptivePolicy(max_batch=8, min_wait=1.0, max_wait=2.0, alpha=1.0)
        pol.on_arrival(0.0)
        pol.on_arrival(100.0)
        assert pol.wait_budget() == 2.0
        pol.on_arrival(100.001)
        assert pol.wait_budget() == 1.0

    def test_no_batching_is_fixed_one_zero(self):
        pol = no_batching()
        assert pol.max_batch == 1
        assert pol.max_wait == 0.0


class TestServiceModel:
    def test_energy_overhead_amortized_exactly(self, backend):
        """N requests in one batch each carry e_overhead/N; the batch
        total carries e_overhead exactly once."""
        model = ServiceModel(t_overhead=0.0, e_overhead=9e-12)
        engine = ServeEngine(
            backend, FixedPolicy(max_batch=3, max_wait=1e9), model=model
        )
        keys = _keys(3)
        for seq in range(3):
            engine.offer(seq, float(seq), keys[seq], 0)
        records = engine.drain()
        solo = ServeEngine(backend, no_batching(), model=model)
        solo_rec = solo.offer(0, 0.0, keys[0], 0) + solo.drain()
        # Same physics energy; the batched request carries a third of
        # the dispatch overhead, the solo one carries all of it.
        assert records[0].energy == pytest.approx(
            solo_rec[0].energy - 9e-12 + 3e-12
        )

    def test_model_validation(self):
        with pytest.raises(ServeError):
            ServiceModel(t_overhead=-1.0)
