"""Asyncio front door: reorder buffer, bit-reproducibility, reports."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.core import build_array, get_design
from repro.errors import ServeError
from repro.serve import (
    AdmissionControl,
    ArrayBackend,
    ChipBackend,
    ServeEngine,
    ServiceModel,
    TCAMService,
    make_policy,
    mmpp_trace,
    no_batching,
    poisson_trace,
    run_trace,
    serve_trace,
)
from repro.tcam import ArrayGeometry, random_word
from repro.tcam.chip import TCAMChip

COLS = 16


def _backend(workers: int = 0) -> ArrayBackend:
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows=8, cols=COLS))
    rng = np.random.default_rng(42)
    array.load([random_word(COLS, rng) for _ in range(8)])
    return ArrayBackend(array, workers=workers)


def _chip_backend() -> ChipBackend:
    def bank():
        return build_array(get_design("fefet2t"), ArrayGeometry(rows=8, cols=COLS))

    chip = TCAMChip(bank, n_banks=2)
    rng = np.random.default_rng(42)
    chip.load([random_word(COLS, rng) for _ in range(16)])
    return ChipBackend(chip)


class TestBitReproducibility:
    def test_async_matches_sync_exactly(self):
        """Any asyncio interleaving produces the same records as the
        plain synchronous loop -- bit for bit, including energy."""
        trace = poisson_trace(150, rate=2e6, cols=COLS, seed=1)
        policy = lambda: make_policy("fixed", max_batch=16, max_wait=10e-6)  # noqa: E731
        sync = run_trace(_backend(), trace, policy())
        conc = asyncio.run(serve_trace(_backend(), trace, policy()))
        assert sync.to_dict(include_records=True) == conc.to_dict(include_records=True)

    def test_async_matches_sync_with_backpressure(self):
        trace = mmpp_trace(200, rate=20e6, cols=COLS, seed=5)
        adm = AdmissionControl(queue_capacity=8)
        sync = run_trace(_backend(), trace, no_batching(), admission=adm)
        conc = asyncio.run(
            serve_trace(
                _backend(),
                trace,
                no_batching(),
                admission=AdmissionControl(queue_capacity=8),
            )
        )
        assert sync.rejected == conc.rejected > 0
        assert sync.to_dict(include_records=True) == conc.to_dict(include_records=True)

    def test_worker_count_does_not_change_records(self):
        """The backend's search_batch worker count is a pure execution
        detail -- records must be bit-identical."""
        trace = poisson_trace(120, rate=5e6, cols=COLS, seed=3)
        serial = run_trace(_backend(workers=1), trace, make_policy("adaptive"))
        parallel = run_trace(_backend(workers=2), trace, make_policy("adaptive"))
        assert serial.to_dict(include_records=True) == parallel.to_dict(
            include_records=True
        )

    def test_repeated_runs_identical(self):
        trace = mmpp_trace(100, rate=3e6, cols=COLS, seed=9)
        a = run_trace(_backend(), trace, make_policy("adaptive", max_batch=32))
        b = run_trace(_backend(), trace, make_policy("adaptive", max_batch=32))
        assert a.to_dict(include_records=True) == b.to_dict(include_records=True)

    def test_chip_backend_routes_banks(self):
        trace = poisson_trace(60, rate=2e6, cols=COLS, seed=4, n_banks=2)
        report = run_trace(_chip_backend(), trace, make_policy("fixed"))
        assert report.completed == 60
        report.records  # served in dispatch order with global rows
        assert {r.seq for r in report.records} == set(range(60))


class TestReorderBuffer:
    def test_out_of_order_submission_is_reordered(self):
        """Submitting seqs in scrambled task order must not disturb the
        engine's trace order (it would raise otherwise)."""

        async def scenario():
            engine = ServeEngine(_backend(), no_batching())
            service = TCAMService(engine)
            rng = np.random.default_rng(0)
            keys = [random_word(COLS, rng) for _ in range(20)]
            order = list(reversed(range(20)))  # worst case: fully reversed
            tasks = [
                asyncio.ensure_future(service.submit(s, float(s), keys[s], 0))
                for s in order
            ]
            while service._next_seq < 20:
                await asyncio.sleep(0)
            await service.close()
            results = await asyncio.gather(*tasks)
            return results

        results = asyncio.run(scenario())
        # gather order follows the scrambled submission order.
        assert [r.seq for r in results] == list(reversed(range(20)))
        assert all(r is not None for r in results)

    def test_duplicate_seq_rejected(self):
        async def scenario():
            service = TCAMService(ServeEngine(_backend(), no_batching()))
            rng = np.random.default_rng(0)
            key = random_word(COLS, rng)
            task = asyncio.ensure_future(service.submit(5, 0.0, key, 0))
            await asyncio.sleep(0)
            with pytest.raises(ServeError, match="duplicate"):
                await service.submit(5, 0.0, key, 0)
            task.cancel()

        asyncio.run(scenario())

    def test_submit_after_close_raises(self):
        async def scenario():
            service = TCAMService(ServeEngine(_backend(), no_batching()))
            await service.close()
            rng = np.random.default_rng(0)
            with pytest.raises(ServeError, match="closed"):
                await service.submit(0, 0.0, random_word(COLS, rng), 0)

        asyncio.run(scenario())

    def test_rejected_submitter_receives_none(self):
        async def scenario():
            engine = ServeEngine(
                _backend(),
                no_batching(),
                admission=AdmissionControl(queue_capacity=1),
                model=ServiceModel(t_overhead=1e3),  # port busy forever
            )
            service = TCAMService(engine)
            rng = np.random.default_rng(0)
            keys = [random_word(COLS, rng) for _ in range(3)]
            tasks = [
                asyncio.ensure_future(service.submit(s, float(s) * 1e-9, keys[s], 0))
                for s in range(3)
            ]
            while service._next_seq < 3:
                await asyncio.sleep(0)
            await service.close()
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        # Seq 0 grabs the port, seq 1 fills the 1-deep queue, seq 2 shed.
        assert results[0] is not None and results[1] is not None
        assert results[2] is None


class TestReportAndObs:
    def test_report_schema_and_conservation(self):
        trace = poisson_trace(80, rate=2e6, cols=COLS, seed=2)
        report = run_trace(_backend(), trace, make_policy("fixed"))
        d = report.to_dict()
        assert d["schema_version"] == 1
        assert d["offered"] == d["completed"] + d["rejected"] == 80
        assert d["throughput"] > 0.0
        assert d["latency_p50"] <= d["latency_p95"] <= d["latency_p99"]
        assert d["energy_per_request"] > 0.0
        assert "records" not in d
        assert "records" in report.to_dict(include_records=True)

    def test_serving_books_obs_metrics_and_spans(self):
        trace = poisson_trace(40, rate=2e6, cols=COLS, seed=6)
        with obs.observe() as session:
            report = run_trace(_backend(), trace, make_policy("fixed", max_batch=8))
        snap = session.metrics.snapshot()
        assert snap["serve.offered"] == 40.0
        assert snap["serve.admitted"] == 40.0
        assert snap["serve.completed"] == 40.0
        assert snap["serve.batches"] == float(report.batches)
        lat = snap["serve.latency"]
        assert lat["count"] == 40
        assert lat["p99"] == pytest.approx(report.latency_p99)
        batch_spans = [s for s in session.spans if s.name == "serve.batch"]
        assert len(batch_spans) == report.batches
        # Span energy sums to the run's energy total exactly.
        total = sum(s.total_energy().total for s in batch_spans)
        assert total == pytest.approx(report.energy_total, rel=1e-12)

    def test_empty_trace_report(self):
        trace = poisson_trace(1, rate=1e6, cols=COLS, seed=0)
        # Reject everything via a zero-capacity-equivalent: port blocked
        # and queue of 1 already full after the first arrival; simplest
        # empty-records case is a drained engine that served nothing.
        engine = ServeEngine(_backend(), no_batching())
        assert engine.drain() == []
        engine.check_conservation()
        assert trace.offered_rate == 0.0  # single arrival has no span
