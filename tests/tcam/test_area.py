"""Tests for the area model."""

from __future__ import annotations

import pytest

from repro.errors import TCAMError
from repro.tcam.area import TECH_45NM, TechNode, array_area_m2, cell_dimensions


class TestTechNode:
    def test_default_node(self):
        assert TECH_45NM.feature_size == pytest.approx(45e-9)
        assert TECH_45NM.vdd_nominal == pytest.approx(0.9)

    def test_area_conversion(self):
        assert TECH_45NM.area_m2(100.0) == pytest.approx(100 * (45e-9) ** 2)

    def test_rejects_bad_feature(self):
        with pytest.raises(TCAMError):
            TechNode("bad", 0.0, 0.9)

    def test_rejects_bad_area(self):
        with pytest.raises(TCAMError):
            TECH_45NM.area_m2(0.0)


class TestCellDimensions:
    def test_aspect_ratio(self):
        w, h = cell_dimensions(100.0, TECH_45NM)
        assert w / h == pytest.approx(2.0)

    def test_area_preserved(self):
        w, h = cell_dimensions(331.0, TECH_45NM)
        assert w * h == pytest.approx(TECH_45NM.area_m2(331.0))

    def test_bigger_cell_bigger_dims(self):
        w1, h1 = cell_dimensions(74.0, TECH_45NM)
        w2, h2 = cell_dimensions(331.0, TECH_45NM)
        assert w2 > w1 and h2 > h1


class TestArrayArea:
    def test_scales_with_rows_and_cols(self):
        a = array_area_m2(74.0, 64, 64, TECH_45NM)
        b = array_area_m2(74.0, 128, 64, TECH_45NM)
        assert b == pytest.approx(2 * a)

    def test_rejects_empty_array(self):
        with pytest.raises(TCAMError):
            array_area_m2(74.0, 0, 64, TECH_45NM)

    def test_64x64_fefet_array_order_of_magnitude(self):
        """64x64 2-FeFET cells at 45 nm ~ 600 um^2."""
        area = array_area_m2(74.0, 64, 64, TECH_45NM)
        assert 1e-10 < area < 1e-8