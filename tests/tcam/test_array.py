"""Tests for the TCAM array core."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_array, get_design
from repro.energy import EnergyComponent
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, TCAMArray, random_word, word_from_string
from repro.tcam.cells import FeFET2TCell
from repro.tcam.trit import TernaryWord, Trit


def _loaded_array(rows=8, cols=16, seed=0, x_fraction=0.3, design="fefet2t"):
    rng = np.random.default_rng(seed)
    arr = build_array(get_design(design), ArrayGeometry(rows, cols))
    words = [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]
    arr.load(words)
    return arr, words, rng


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(TCAMError):
            ArrayGeometry(0, 4)

    def test_rejects_unknown_sensing(self):
        with pytest.raises(TCAMError):
            TCAMArray(FeFET2TCell(), ArrayGeometry(4, 4), sensing="magic")

    def test_ml_capacitance_grows_with_cols(self):
        a16 = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        a64 = build_array(get_design("fefet2t"), ArrayGeometry(4, 64))
        assert a64.c_ml > 3.0 * a16.c_ml

    def test_default_t_eval_is_twice_single_miss_crossing(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        from repro.circuits.matchline import MatchLine, MatchLineLoad

        load = MatchLineLoad(arr.c_ml, 1, 15, arr.cell.i_pulldown, arr.cell.i_leak)
        t_cross = MatchLine(load, 0.9, 0.9).time_to(arr.sense_amp.v_ref)
        assert arr.t_eval == pytest.approx(2.0 * t_cross, rel=1e-6)


class TestWritePath:
    def test_write_then_read_back(self):
        arr, _, _ = _loaded_array()
        w = word_from_string("10XX01XX10XX01XX")
        arr.write(3, w)
        assert arr.word_at(3) == w

    def test_write_marks_valid(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        assert not arr.valid_mask().any()
        arr.write(2, word_from_string("10101010"))
        assert arr.valid_mask()[2]

    def test_write_energy_booked_under_write(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        out = arr.write(0, word_from_string("10101010"))
        assert out.energy.get(EnergyComponent.WRITE) > 0.0
        assert out.energy.total == out.energy.get(EnergyComponent.WRITE)

    def test_rewrite_same_word_free_for_nonvolatile(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        w = word_from_string("1010XX10")
        arr.write(0, w)
        out = arr.write(0, w)
        assert out.cells_changed == 0
        assert out.energy.total == pytest.approx(0.0)

    def test_write_rejects_bad_row(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        with pytest.raises(TCAMError):
            arr.write(4, word_from_string("10101010"))

    def test_write_rejects_bad_width(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        with pytest.raises(TCAMError):
            arr.write(0, word_from_string("101"))

    def test_invalidate_removes_from_matches(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        w = word_from_string("10101010")
        arr.write(0, w)
        assert arr.search(w).first_match == 0
        arr.invalidate(0)
        assert arr.search(w).first_match is None

    def test_load_rejects_overflow(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(2, 8))
        words = [word_from_string("10101010")] * 3
        with pytest.raises(TCAMError):
            arr.load(words)


class TestSearchCorrectness:
    def test_search_finds_stored_word(self):
        arr, words, rng = _loaded_array(x_fraction=0.0)
        out = arr.search(words[5])
        assert out.match_mask[5]

    def test_search_agrees_with_software_reference(self, any_design):
        rng = np.random.default_rng(42)
        arr = build_array(any_design, ArrayGeometry(16, 24))
        words = [random_word(24, rng, x_fraction=0.3) for _ in range(16)]
        arr.load(words)
        for _ in range(10):
            key = random_word(24, rng)
            out = arr.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected)
            assert out.functional_errors == 0

    def test_first_match_is_lowest_index(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        w = word_from_string("1010XXXX")
        arr.write(1, w)
        arr.write(3, w)
        out = arr.search(word_from_string("10101111"))
        assert out.first_match == 1
        assert out.match_mask[3]

    def test_all_x_key_matches_every_valid_row(self):
        arr, words, _ = _loaded_array()
        key = TernaryWord([Trit.X] * 16)
        out = arr.search(key)
        assert out.match_mask.all()

    def test_unwritten_rows_never_match(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(8, 8))
        arr.write(0, word_from_string("10101010"))
        out = arr.search(TernaryWord([Trit.X] * 8))
        assert out.match_mask[0]
        assert not out.match_mask[1:].any()

    def test_search_rejects_bad_width(self):
        arr, _, _ = _loaded_array()
        with pytest.raises(TCAMError):
            arr.search(word_from_string("101"))

    def test_miss_histogram_totals_valid_rows(self):
        arr, words, rng = _loaded_array(rows=10)
        out = arr.search(random_word(16, rng))
        assert sum(out.miss_histogram.values()) == 10

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_match_mask_matches_reference_property(self, seed):
        rng = np.random.default_rng(seed)
        arr = build_array(get_design("fefet2t"), ArrayGeometry(6, 12))
        words = [random_word(12, rng, x_fraction=0.4) for _ in range(6)]
        arr.load(words)
        key = random_word(12, rng, x_fraction=0.2)
        out = arr.search(key)
        expected = np.array([w.matches(key) for w in words])
        assert np.array_equal(out.match_mask, expected)


class TestSearchEnergy:
    def test_energy_positive_and_componentized(self):
        arr, words, rng = _loaded_array()
        out = arr.search(random_word(16, rng))
        assert out.energy_total > 0.0
        bd = out.energy.breakdown()
        assert EnergyComponent.ML_PRECHARGE.value in bd
        assert EnergyComponent.SEARCHLINE.value in bd

    def test_miss_dominated_costs_more_than_all_x(self):
        """A fully masked key discharges nothing."""
        arr, words, rng = _loaded_array()
        e_miss = arr.search(random_word(16, rng)).energy_total
        e_masked = arr.search(TernaryWord([Trit.X] * 16)).energy_total
        assert e_masked < e_miss

    def test_repeated_key_pays_no_sl_energy(self):
        arr, words, rng = _loaded_array()
        key = random_word(16, rng)
        arr.search(key)
        out2 = arr.search(key)
        assert out2.energy.get(EnergyComponent.SEARCHLINE) == 0.0

    def test_row_mask_reduces_ml_energy(self):
        arr, words, rng = _loaded_array(rows=16)
        key = random_word(16, rng)
        full = arr.search(key)
        mask = np.zeros(16, dtype=bool)
        mask[:4] = True
        partial = arr.search(key, row_mask=mask)
        assert partial.energy.get(EnergyComponent.ML_PRECHARGE) < 0.5 * full.energy.get(
            EnergyComponent.ML_PRECHARGE
        )

    def test_row_mask_blocks_matches_outside(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        w = word_from_string("10101010")
        arr.write(2, w)
        mask = np.array([True, True, False, False])
        out = arr.search(w, row_mask=mask)
        assert out.first_match is None

    def test_row_mask_shape_checked(self):
        arr, _, rng = _loaded_array()
        with pytest.raises(TCAMError):
            arr.search(random_word(16, rng), row_mask=np.ones(3, dtype=bool))

    def test_leakage_scales_with_cycle_time(self):
        arr, words, rng = _loaded_array()
        out = arr.search(random_word(16, rng))
        expected = arr.standby_power() * out.cycle_time
        assert out.energy.get(EnergyComponent.LEAKAGE) == pytest.approx(expected)


class TestTiming:
    def test_delay_components_positive(self):
        arr, words, rng = _loaded_array()
        out = arr.search(random_word(16, rng))
        assert out.search_delay > 0.0
        assert out.cycle_time >= out.search_delay - arr.encoder.delay

    def test_wider_array_slower(self):
        narrow = build_array(get_design("fefet2t"), ArrayGeometry(8, 16))
        wide = build_array(get_design("fefet2t"), ArrayGeometry(8, 128))
        assert wide.t_eval > narrow.t_eval

    def test_sense_margin_positive_for_all_precharge_designs(self, any_design):
        if any_design.sensing != "precharge":
            pytest.skip("margin applies to precharge sensing")
        arr = build_array(any_design, ArrayGeometry(8, 32))
        assert arr.sense_margin() > 0.05

    def test_sense_margin_rejected_for_race(self):
        arr = build_array(get_design("fefet_cr"), ArrayGeometry(8, 16))
        with pytest.raises(TCAMError):
            arr.sense_margin()


class TestNearestMatch:
    def test_finds_minimum_distance_row(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        arr.write(0, word_from_string("11111111"))
        arr.write(1, word_from_string("11110000"))
        arr.write(2, word_from_string("00000000"))
        out = arr.nearest_match(word_from_string("11111110"))
        assert out.row == 0
        assert out.distance == 1

    def test_exact_match_distance_zero(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        w = word_from_string("10101010")
        arr.write(2, w)
        out = arr.nearest_match(w)
        assert out.row == 2 and out.distance == 0

    def test_empty_array_returns_none(self):
        arr = build_array(get_design("fefet2t"), ArrayGeometry(4, 8))
        out = arr.nearest_match(word_from_string("10101010"))
        assert out.row is None

    def test_costs_at_least_as_much_as_exact_search(self):
        """Associative mode fully discharges every losing line, so on
        identical state it can never be cheaper than exact match."""
        arr_a, words, rng = _loaded_array(rows=16, x_fraction=0.0, seed=7)
        arr_b, _, _ = _loaded_array(rows=16, x_fraction=0.0, seed=7)
        key = random_word(16, rng)
        e_exact = arr_a.search(key).energy_total
        e_nearest = arr_b.nearest_match(key).energy.total
        assert e_nearest >= 0.95 * e_exact

    def test_rejected_for_race_sensing(self):
        arr = build_array(get_design("fefet_cr"), ArrayGeometry(4, 8))
        with pytest.raises(TCAMError):
            arr.nearest_match(word_from_string("10101010"))


class TestRaceSensingArray:
    def test_race_search_correct(self):
        arr, words, rng = _loaded_array(design="fefet_cr")
        for _ in range(5):
            key = random_word(16, rng)
            out = arr.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected)

    def test_race_energy_booked_under_race_source(self):
        arr, words, rng = _loaded_array(design="fefet_cr")
        out = arr.search(random_word(16, rng))
        assert out.energy.get(EnergyComponent.RACE_SOURCE) > 0.0
        assert out.energy.get(EnergyComponent.ML_PRECHARGE) == 0.0
