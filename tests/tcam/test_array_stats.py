"""Tests for the array statistics and pipelining helpers."""

from __future__ import annotations

import pytest

from repro.core import build_array, get_design
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, random_word, word_from_string


def _array(rows=8, cols=16, design="fefet2t"):
    return build_array(get_design(design), ArrayGeometry(rows, cols))


class TestOccupancy:
    def test_empty_array(self):
        assert _array().occupancy() == 0.0
        assert _array().x_density() == 0.0

    def test_half_full(self, rng):
        arr = _array()
        for row in range(4):
            arr.write(row, random_word(16, rng))
        assert arr.occupancy() == pytest.approx(0.5)

    def test_invalidation_reduces_occupancy(self, rng):
        arr = _array()
        arr.write(0, random_word(16, rng))
        arr.invalidate(0)
        assert arr.occupancy() == 0.0

    def test_x_density_counts_only_valid_rows(self):
        arr = _array(rows=4, cols=4)
        arr.write(0, word_from_string("1XX0"))
        assert arr.x_density() == pytest.approx(0.5)

    def test_x_density_statistics(self, rng):
        arr = _array(rows=64, cols=64)
        arr.load([random_word(64, rng, x_fraction=0.3) for _ in range(64)])
        assert arr.x_density() == pytest.approx(0.3, abs=0.03)


class TestPipelinedCycle:
    def test_pipelined_no_slower_than_sequential(self, rng):
        arr = _array(rows=16, cols=64)
        arr.load([random_word(64, rng) for _ in range(16)])
        out = arr.search(random_word(64, rng))
        assert arr.pipelined_cycle_time() <= out.cycle_time

    def test_pipelined_is_max_of_stages(self):
        arr = _array(rows=16, cols=64)
        t_restore = arr.precharge.restore_time(arr.c_ml, 0.0)
        expected = max(arr.sl_settle_delay, arr.t_eval, t_restore)
        assert arr.pipelined_cycle_time() == pytest.approx(expected)

    def test_race_arrays_rejected(self):
        arr = _array(design="fefet_cr")
        with pytest.raises(TCAMError):
            arr.pipelined_cycle_time()

    def test_pipelining_raises_throughput_meaningfully(self, rng):
        """The restore stage dominates the FeFET cycle; overlapping the
        evaluation and sensing of the next search behind it buys a real
        issue-rate factor (>= 1.2x)."""
        arr = _array(rows=32, cols=64)
        arr.load([random_word(64, rng) for _ in range(32)])
        out = arr.search(random_word(64, rng))
        speedup = out.cycle_time / arr.pipelined_cycle_time()
        assert speedup > 1.2
