"""Tests for the segmented bank (selective precharge + early termination)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy import EnergyComponent
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, SegmentedBank, random_word, word_from_string
from repro.tcam.cells import FeFET2TCell


def _bank(rows=16, cols=32, probe=8, early=True):
    return SegmentedBank(
        FeFET2TCell(),
        ArrayGeometry(rows, cols),
        probe_cols=probe,
        early_terminate=early,
    )


def _loaded_bank(rows=16, cols=32, probe=8, seed=1, x_fraction=0.3, early=True):
    rng = np.random.default_rng(seed)
    bank = _bank(rows, cols, probe, early)
    words = [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]
    bank.load(words)
    return bank, words, rng


class TestConstruction:
    def test_rejects_probe_out_of_range(self):
        with pytest.raises(TCAMError):
            _bank(probe=0)
        with pytest.raises(TCAMError):
            _bank(probe=32)

    def test_segments_partition_columns(self):
        bank = _bank(probe=10)
        assert bank.stage1.geometry.cols == 10
        assert bank.stage2.geometry.cols == 22


class TestWriteReadback:
    def test_word_roundtrip_across_segments(self):
        bank = _bank()
        w = word_from_string("10XX0101" * 4)
        bank.write(3, w)
        assert bank.word_at(3) == w

    def test_write_rejects_bad_width(self):
        bank = _bank()
        with pytest.raises(TCAMError):
            bank.write(0, word_from_string("101"))

    def test_write_energy_sums_segments(self):
        bank = _bank()
        w = word_from_string("10XX0101" * 4)
        ledger = bank.write(0, w)
        assert ledger.get(EnergyComponent.WRITE) > 0.0


class TestSearchCorrectness:
    def test_agrees_with_flat_reference(self):
        bank, words, rng = _loaded_bank()
        for _ in range(8):
            key = random_word(32, rng)
            seg = bank.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(seg.match_mask, expected)

    def test_planted_match_found(self):
        bank, words, rng = _loaded_bank(x_fraction=0.0)
        seg = bank.search(words[7])
        assert seg.match_mask[7]
        assert seg.first_match is not None

    def test_search_rejects_bad_width(self):
        bank, _, rng = _loaded_bank()
        with pytest.raises(TCAMError):
            bank.search(random_word(16, rng))


class TestSelectivePrechargeEnergy:
    def test_segmented_cheaper_than_flat_on_random_misses(self):
        """The headline claim of technique #2: random keys kill almost all
        rows in the probe, so tail MLs almost never precharge."""
        bank, words, rng = _loaded_bank(rows=32, cols=64, probe=12, x_fraction=0.0)
        key = random_word(64, rng)
        seg = bank.search(key)
        flat = bank.reference_outcome(key)
        assert seg.energy.get(EnergyComponent.ML_PRECHARGE) < 0.7 * flat.energy.get(
            EnergyComponent.ML_PRECHARGE
        )

    def test_survivor_count_reported(self):
        bank, words, rng = _loaded_bank(x_fraction=0.0)
        seg = bank.search(words[0])
        assert seg.survivors_stage1 >= 1

    def test_early_termination_skips_stage2(self):
        bank, words, rng = _loaded_bank(cols=32, probe=16, x_fraction=0.0)
        # A key whose probe half matches nothing.
        while True:
            key = random_word(32, rng)
            probe_part = key[:16]
            if not any(w[:16].matches(probe_part) for w in words):
                break
        seg = bank.search(key)
        assert seg.stage2_skipped
        assert seg.first_match is None

    def test_no_early_termination_always_runs_stage2(self):
        bank, words, rng = _loaded_bank(cols=32, probe=16, x_fraction=0.0, early=False)
        while True:
            key = random_word(32, rng)
            if not any(w[:16].matches(key[:16]) for w in words):
                break
        seg = bank.search(key)
        assert not seg.stage2_skipped

    def test_serial_stages_add_delay(self):
        bank, words, rng = _loaded_bank(x_fraction=0.0)
        seg = bank.search(words[0])  # guarantees survivors -> two stages
        flat = bank.reference_outcome(words[0])
        assert seg.search_delay > flat.search_delay
