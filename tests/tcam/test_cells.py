"""Tests for the three cell descriptors (shared contract + per-technology)."""

from __future__ import annotations

import pytest

from repro.errors import TCAMError
from repro.tcam.cells import CMOS16TCell, FeFET2TCell, ReRAM2T2RCell
from repro.tcam.cells.fefet2t import FeFET2TCellParams, default_fefet_cell_params
from repro.tcam.trit import Trit


class TestSharedContract:
    """Every descriptor must satisfy these regardless of technology."""

    def test_pulldown_beats_leak(self, any_cell):
        assert any_cell.i_pulldown(0.9) > 100.0 * any_cell.i_leak(0.9)

    def test_currents_zero_at_zero_volts(self, any_cell):
        assert any_cell.i_pulldown(0.0) == pytest.approx(0.0, abs=1e-12)
        assert any_cell.i_leak(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_pulldown_monotone_in_vml(self, any_cell):
        assert any_cell.i_pulldown(0.9) >= any_cell.i_pulldown(0.45) > 0.0

    def test_positive_vt_offset_weakens_pulldown(self, any_cell):
        assert any_cell.i_pulldown(0.9, vt_offset=0.1) <= any_cell.i_pulldown(0.9)

    def test_capacitances_positive(self, any_cell):
        assert any_cell.c_ml_per_cell > 0.0
        assert any_cell.c_sl_gate_per_cell > 0.0

    def test_area_positive(self, any_cell):
        assert any_cell.area_f2 > 0.0

    def test_write_same_trit_cheap_or_free(self, any_cell):
        for t in Trit:
            cost = any_cell.write_cost(t, t)
            change = any_cell.write_cost(Trit.ZERO, Trit.ONE)
            assert cost.energy <= change.energy

    def test_write_costs_non_negative(self, any_cell):
        for old in Trit:
            for new in Trit:
                c = any_cell.write_cost(old, new)
                assert c.energy >= 0.0 and c.latency >= 0.0

    def test_standby_leakage_non_negative(self, any_cell):
        assert any_cell.standby_leakage(0.9) >= 0.0

    def test_standby_rejects_bad_vdd(self, any_cell):
        with pytest.raises(TCAMError):
            any_cell.standby_leakage(0.0)

    def test_describe_keys(self, any_cell):
        d = any_cell.describe()
        assert {"technology", "transistors", "area_f2"} <= set(d)

    def test_on_off_ratio_large(self, any_cell):
        assert any_cell.on_off_ratio(0.9) > 100.0

    def test_v_search_positive(self, any_cell):
        assert any_cell.v_search > 0.0


class TestCrossTechnologyOrdering:
    """The comparison-table facts the paper's Table 1 rests on."""

    def setup_method(self):
        self.cmos = CMOS16TCell()
        self.reram = ReRAM2T2RCell()
        self.fefet = FeFET2TCell()

    def test_transistor_counts(self):
        assert self.cmos.transistor_count == 16
        assert self.reram.transistor_count == 2
        assert self.fefet.transistor_count == 2

    def test_area_ordering(self):
        assert self.fefet.area_f2 < self.reram.area_f2 < self.cmos.area_f2

    def test_cmos_area_at_least_3x_fefet(self):
        assert self.cmos.area_f2 / self.fefet.area_f2 > 3.0

    def test_volatility(self):
        assert not self.cmos.nonvolatile
        assert self.reram.nonvolatile
        assert self.fefet.nonvolatile

    def test_fefet_ml_load_smallest(self):
        assert self.fefet.c_ml_per_cell < self.cmos.c_ml_per_cell

    def test_fefet_on_off_beats_reram(self):
        """Polarization windows buy orders of magnitude over filaments."""
        assert self.fefet.on_off_ratio(0.9) > 10.0 * self.reram.on_off_ratio(0.9)

    def test_sram_leaks_most_in_standby(self):
        assert self.cmos.standby_leakage(0.9) > self.fefet.standby_leakage(0.9)
        assert self.cmos.standby_leakage(0.9) > self.reram.standby_leakage(0.9)

    def test_fefet_write_costs_more_than_sram(self):
        """Non-volatile writes are the FeTCAM tax (Table R-T3)."""
        e_fefet = self.fefet.write_cost(Trit.ZERO, Trit.ONE).energy
        e_cmos = self.cmos.write_cost(Trit.ZERO, Trit.ONE).energy
        assert e_fefet > e_cmos

    def test_fefet_write_slower_than_sram(self):
        t_fefet = self.fefet.write_cost(Trit.ZERO, Trit.ONE).latency
        t_cmos = self.cmos.write_cost(Trit.ZERO, Trit.ONE).latency
        assert t_fefet > t_cmos


class TestReRAMSpecifics:
    def test_match_leak_set_by_hrs(self):
        cell = ReRAM2T2RCell()
        expected = 0.9 / (cell.params.rram.r_hrs + cell.r_access)
        assert cell.i_leak(0.9) == pytest.approx(expected)

    def test_pulldown_limited_by_lrs_or_saturation(self):
        cell = ReRAM2T2RCell()
        i = cell.i_pulldown(0.9)
        assert i <= 0.9 / cell.params.rram.r_lrs

    def test_write_x_resets_one_element(self):
        cell = ReRAM2T2RCell()
        e_to_x = cell.write_cost(Trit.ONE, Trit.X).energy
        e_swap = cell.write_cost(Trit.ONE, Trit.ZERO).energy
        assert 0.0 < e_to_x < e_swap


class TestFeFETCellSpecifics:
    def test_search_voltage_inside_window(self):
        p = FeFET2TCellParams()
        assert p.fefet.vt_lvt < p.v_search < p.fefet.vt_hvt

    def test_rejects_search_voltage_outside_window(self):
        with pytest.raises(TCAMError):
            FeFET2TCellParams(v_search=2.0)

    def test_leak_includes_undriven_lvt_path(self):
        """The undriven LVT device dominates the matching-cell leakage."""
        cell = FeFET2TCell()
        f = cell.params.fefet
        driven_hvt = cell._current(cell.params.v_search, 0.9, f.vt_hvt)
        assert cell.i_leak(0.9) > driven_hvt

    def test_write_to_x_skips_program_pulse(self):
        cell = FeFET2TCell()
        e_x = cell.write_cost(Trit.ONE, Trit.X).energy
        e_data = cell.write_cost(Trit.ONE, Trit.ZERO).energy
        assert e_x < e_data

    def test_write_latency_two_phases(self):
        cell = FeFET2TCell()
        cost = cell.write_cost(Trit.ZERO, Trit.ONE)
        assert cost.latency == pytest.approx(2 * cell.params.fefet.program_width)

    def test_default_params_helper(self):
        p = default_fefet_cell_params()
        assert p.memory_window == pytest.approx(1.2)
