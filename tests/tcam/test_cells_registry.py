"""The cell registry: one lookup surface, open registration, shims."""

from __future__ import annotations

import warnings

import pytest

from repro.core import all_designs
from repro.errors import TCAMError
from repro.tcam.cell import CellDescriptor
from repro.tcam.cells import (
    CellSpec,
    FeFET2TCell,
    all_cell_specs,
    cell_spec,
    get_cell,
    list_cells,
    register_cell,
)
from repro.tcam.cells.registry import _REGISTRY


class TestLookup:
    def test_baseline_and_proposed_cells_registered(self):
        names = list_cells()
        assert {"cmos16t", "reram2t2r", "fefet2t"} <= set(names)
        assert {"fefet_mlc", "seemcam", "fecam"} <= set(names)

    def test_baselines_listed_before_proposed(self):
        names = list_cells()
        assert names.index("cmos16t") < names.index("seemcam")

    def test_get_cell_builds_fresh_descriptors(self):
        a = get_cell("fefet2t")
        b = get_cell("fefet2t")
        assert isinstance(a, FeFET2TCell)
        assert a is not b

    def test_every_spec_builds_a_descriptor(self):
        for spec in all_cell_specs():
            cell = spec.build()
            assert isinstance(cell, CellDescriptor)
            assert cell.area_f2 > 0.0

    def test_unknown_name_error_lists_valid_keys(self):
        with pytest.raises(TCAMError, match="valid cells.*fefet2t"):
            get_cell("frobnium")

    def test_spec_metadata(self):
        spec = cell_spec("seemcam")
        assert spec.proposed
        assert spec.display_name
        assert spec.description
        assert not cell_spec("cmos16t").proposed


class TestSupplyAwareness:
    def test_supply_riding_cells_recharacterize(self):
        """CMOS compare gates ride VDD: lower supply, weaker pulldown."""
        strong = get_cell("cmos16t", vdd=1.1)
        weak = get_cell("cmos16t", vdd=0.7)
        assert weak.i_pulldown(0.5) < strong.i_pulldown(0.5)

    def test_boosted_gate_cells_ignore_supply(self):
        """FeFET search gates run from a separate SL supply."""
        a = get_cell("fefet2t", vdd=0.7)
        b = get_cell("fefet2t", vdd=1.1)
        assert a.i_pulldown(0.5) == b.i_pulldown(0.5)


class TestOpenRegistration:
    def test_duplicate_name_rejected(self):
        spec = cell_spec("fefet2t")
        with pytest.raises(TCAMError, match="duplicate"):
            register_cell(spec)

    def test_downstream_registration_round_trips(self):
        spec = CellSpec(
            name="test_custom_cell",
            display_name="Custom",
            factory=lambda vdd: FeFET2TCell(),
            description="registered by the test suite",
            proposed=True,
        )
        register_cell(spec)
        try:
            assert "test_custom_cell" in list_cells()
            assert isinstance(get_cell("test_custom_cell"), FeFET2TCell)
        finally:
            _REGISTRY.pop("test_custom_cell")


class TestDesignRegistryIntegration:
    def test_design_cells_resolve_through_registry(self):
        for spec in all_designs():
            if spec.cell_name is not None:
                assert spec.cell_name in list_cells()
                built = spec.build_cell()
                named = get_cell(spec.cell_name)
                assert type(built) is type(named)

    def test_supply_threads_through_build_cell(self):
        spec = next(s for s in all_designs() if s.cell_name == "cmos16t")
        weak = spec.build_cell(vdd=0.7)
        strong = spec.build_cell(vdd=1.1)
        assert weak.i_pulldown(0.5) < strong.i_pulldown(0.5)


class TestDeprecationShims:
    def test_package_level_default_params_warns(self):
        import repro.tcam.cells as cells_pkg

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn = cells_pkg.default_fefet_cell_params
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.tcam.cells.fefet2t import default_fefet_cell_params

        assert fn() == default_fefet_cell_params()

    def test_unknown_attribute_still_raises(self):
        import repro.tcam.cells as cells_pkg

        with pytest.raises(AttributeError):
            cells_pkg.no_such_symbol
