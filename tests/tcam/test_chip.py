"""Tests for the chip-level bank organization and power gating."""

from __future__ import annotations

import pytest

from repro.core import build_array, get_design
from repro.energy import EnergyComponent
from repro.errors import CapacityError, TCAMError
from repro.tcam import ArrayGeometry, random_word
from repro.tcam.chip import GatingPolicy, TCAMChip

GEO = ArrayGeometry(rows=8, cols=16)


def _fefet_bank():
    return build_array(get_design("fefet2t"), GEO)


def _cmos_bank():
    return build_array(get_design("cmos16t"), GEO)


def _chip(gated=False, n_banks=4) -> TCAMChip:
    policy = GatingPolicy(gate_idle_banks=gated)
    return TCAMChip(_fefet_bank, n_banks=n_banks, gating=policy)


class TestConstruction:
    def test_capacity(self):
        chip = _chip()
        assert chip.rows_total == 32

    def test_rejects_zero_banks(self):
        with pytest.raises(TCAMError):
            TCAMChip(_fefet_bank, n_banks=0)

    def test_volatile_chip_cannot_gate(self):
        with pytest.raises(TCAMError):
            GatingPolicy(gate_idle_banks=True, retention_required=True)

    def test_rejects_negative_wake_costs(self):
        with pytest.raises(TCAMError):
            GatingPolicy(wakeup_latency=-1.0)


class TestAddressing:
    def test_global_rows_map_to_banks(self, rng):
        chip = _chip()
        words = [random_word(16, rng) for _ in range(20)]
        chip.load(words)
        # Word 10 lives in bank 1, local row 2.
        assert chip.banks[1].word_at(2) == words[10]

    def test_search_reports_global_row(self, rng):
        chip = _chip()
        words = [random_word(16, rng) for _ in range(20)]
        chip.load(words)
        result = chip.search(words[10], bank=1)
        assert result.row == 10

    def test_load_rejects_overflow(self, rng):
        chip = _chip()
        with pytest.raises(CapacityError):
            chip.load([random_word(16, rng) for _ in range(33)])

    def test_rejects_bad_bank(self, rng):
        chip = _chip()
        with pytest.raises(TCAMError):
            chip.search(random_word(16, rng), bank=4)


class TestGating:
    def test_gated_chip_standby_power_one_bank(self, rng):
        chip = _chip(gated=True)
        chip.load([random_word(16, rng) for _ in range(8)])
        chip.search(random_word(16, rng), bank=0)
        ungated = _chip(gated=False)
        assert chip.standby_power() == pytest.approx(ungated.standby_power() / 4)

    def test_first_search_on_gated_bank_pays_wakeup(self, rng):
        chip = _chip(gated=True)
        chip.load([random_word(16, rng) for _ in range(8)])
        result = chip.search(random_word(16, rng), bank=2)
        assert result.energy.get(EnergyComponent.CLOCK) > 0.0
        assert result.latency > result.outcome.search_delay

    def test_warm_bank_pays_no_wakeup(self, rng):
        chip = _chip(gated=True)
        chip.load([random_word(16, rng) for _ in range(8)])
        chip.search(random_word(16, rng), bank=2)
        again = chip.search(random_word(16, rng), bank=2)
        assert again.energy.get(EnergyComponent.CLOCK) == 0.0

    def test_idle_leakage_scales_with_powered_banks(self, rng):
        gated = _chip(gated=True)
        ungated = _chip(gated=False)
        for chip in (gated, ungated):
            chip.load([random_word(16, rng) for _ in range(8)])
            chip.search(random_word(16, rng), bank=0)  # settle gating state
        idle = 1e-3
        e_gated = gated.search(random_word(16, rng), bank=0, idle_time=idle)
        e_ungated = ungated.search(random_word(16, rng), bank=0, idle_time=idle)
        leak_gated = e_gated.energy.get(EnergyComponent.LEAKAGE)
        leak_ungated = e_ungated.energy.get(EnergyComponent.LEAKAGE)
        assert leak_ungated > 3.0 * leak_gated


class TestDutyCycleCrossover:
    def test_gating_wins_at_low_search_rates(self, rng):
        """The R-F12 claim in miniature: at 1 kHz the gated FeFET chip's
        amortized energy undercuts the ungated one; at 100 MHz they tie."""
        gated = _chip(gated=True)
        ungated = _chip(gated=False)
        for chip in (gated, ungated):
            chip.load([random_word(16, rng) for _ in range(8)])
            chip.search(random_word(16, rng), bank=0)
        slow_gated = gated.energy_per_search_at_rate(1e3)
        slow_ungated = ungated.energy_per_search_at_rate(1e3)
        assert slow_gated < slow_ungated
        fast_gated = gated.energy_per_search_at_rate(1e8)
        fast_ungated = ungated.energy_per_search_at_rate(1e8)
        assert fast_gated == pytest.approx(fast_ungated, rel=0.05)

    def test_rate_must_be_positive(self):
        with pytest.raises(TCAMError):
            _chip().energy_per_search_at_rate(0.0)

    def test_cmos_chip_leaks_more_in_standby(self):
        fefet = TCAMChip(_fefet_bank, n_banks=4)
        cmos = TCAMChip(_cmos_bank, n_banks=4)
        assert cmos.standby_power() > fefet.standby_power()
