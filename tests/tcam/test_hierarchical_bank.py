"""Tests for the N-stage hierarchical bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy import EnergyComponent
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, random_word
from repro.tcam.bank import HierarchicalBank, SegmentedBank
from repro.tcam.cells import FeFET2TCell


def _bank(segments, rows=16, cols=32, early=True):
    return HierarchicalBank(
        FeFET2TCell(), ArrayGeometry(rows, cols), segments, early_terminate=early
    )


def _loaded(segments, rows=16, cols=32, seed=3, x_fraction=0.2):
    rng = np.random.default_rng(seed)
    bank = _bank(segments, rows, cols)
    words = [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]
    bank.load(words)
    return bank, words, rng


class TestConstruction:
    def test_segments_must_partition_columns(self):
        with pytest.raises(TCAMError):
            _bank([8, 8])  # sums to 16, not 32

    def test_rejects_empty_segments(self):
        with pytest.raises(TCAMError):
            _bank([])

    def test_rejects_zero_width_segment(self):
        with pytest.raises(TCAMError):
            _bank([0, 32])

    def test_depth(self):
        assert _bank([8, 8, 16]).n_stages == 3


class TestCorrectness:
    @pytest.mark.parametrize("segments", [[32], [8, 24], [8, 8, 16], [4, 4, 8, 16]])
    def test_agrees_with_ternary_oracle(self, segments):
        bank, words, rng = _loaded(segments)
        for _ in range(6):
            key = random_word(32, rng)
            out = bank.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected), segments

    def test_word_roundtrip(self):
        bank, words, _ = _loaded([8, 8, 16])
        for row, word in enumerate(words):
            assert bank.word_at(row) == word

    def test_matches_two_stage_segmented_bank(self):
        """3-arg hierarchy with 2 stages must agree with SegmentedBank."""
        rng = np.random.default_rng(9)
        words = [random_word(32, rng, x_fraction=0.2) for _ in range(16)]
        hier = _bank([8, 24])
        hier.load(words)
        seg = SegmentedBank(FeFET2TCell(), ArrayGeometry(16, 32), probe_cols=8)
        seg.load(words)
        for _ in range(4):
            key = random_word(32, rng)
            a = hier.search(key)
            b = seg.search(key)
            assert np.array_equal(a.match_mask, b.match_mask)

    def test_rejects_bad_widths(self):
        bank, _, rng = _loaded([8, 24])
        with pytest.raises(TCAMError):
            bank.search(random_word(16, rng))
        with pytest.raises(TCAMError):
            bank.write(0, random_word(16, rng))


class TestDepthTradeoff:
    def test_deeper_hierarchy_cheaper_ml_energy(self):
        """Each extra early stage screens more rows away from the wide
        tail segments (random binary data, miss-dominated keys)."""
        rng = np.random.default_rng(11)
        words = [random_word(32, rng) for _ in range(32)]
        keys = [random_word(32, rng) for _ in range(6)]

        energies = {}
        for label, segments in (("flat", [32]), ("two", [8, 24]), ("three", [4, 8, 20])):
            bank = HierarchicalBank(FeFET2TCell(), ArrayGeometry(32, 32), segments)
            bank.load(words)
            total = 0.0
            for key in keys:
                total += bank.search(key).energy.get(EnergyComponent.ML_PRECHARGE)
            energies[label] = total
        assert energies["two"] < energies["flat"]
        assert energies["three"] < energies["two"]

    def test_deeper_hierarchy_slower(self):
        rng = np.random.default_rng(12)
        words = [random_word(32, rng, x_fraction=0.4) for _ in range(16)]
        flat = _bank([32])
        deep = _bank([4, 8, 20])
        flat.load(words)
        deep.load(words)
        key = words[0]  # survivors at every stage -> all stages run
        assert deep.search(key).search_delay > flat.search(key).search_delay

    def test_early_termination_skips_tail_stages(self):
        bank, words, rng = _loaded([16, 8, 8], x_fraction=0.0)
        while True:
            key = random_word(32, rng)
            if not any(w[:16].matches(key[:16]) for w in words):
                break
        out = bank.search(key)
        assert out.stage2_skipped
        assert out.first_match is None
