"""Bulk row loading: ledger-identical to per-row writes, one flush.

``TCAMArray.load_rows`` (and the chip-level wrapper) must store the very
same content, wear, valid bits and per-row write energies as a
sequential :meth:`write` loop -- while bumping the content version once
and flushing the trajectory cache once for the whole block.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_designs, build_array, get_design
from repro.errors import CapacityError, TCAMError
from repro.tcam import ArrayGeometry
from repro.tcam.chip import GatingPolicy, TCAMChip
from repro.tcam.trit import random_word

WRITABLE = [spec.name for spec in all_designs() if spec.sensing != "nand"]


def _fresh_pair(design_name, rows=16, cols=12):
    spec = get_design(design_name)
    geo = ArrayGeometry(rows=rows, cols=cols)
    return build_array(spec, geo), build_array(spec, geo)


def _words(cols, n, seed, x_fraction=0.25):
    rng = np.random.default_rng(seed)
    return [random_word(cols, rng, x_fraction) for _ in range(n)]


def _assert_same_state(a, b):
    assert np.array_equal(a.stored_matrix(), b.stored_matrix())
    assert np.array_equal(a.valid_mask(), b.valid_mask())
    assert np.array_equal(a.wear_counts(), b.wear_counts())


class TestArrayLoadRows:
    @pytest.mark.parametrize("design", WRITABLE)
    def test_ledger_identical_to_write_loop(self, design):
        a, b = _fresh_pair(design)
        words = _words(12, 16, seed=3)
        ref = a.load(words)
        got = b.load_rows(words)
        _assert_same_state(a, b)
        assert list(ref.as_dict()) == list(got.as_dict())
        assert ref.as_dict() == got.as_dict()
        assert ref.total == got.total

    def test_overwrite_at_offset(self):
        a, b = _fresh_pair("fefet2t")
        base = _words(12, 16, seed=5)
        a.load(base)
        b.load(base)
        words = _words(12, 6, seed=7)
        ref = a.load(words, start_row=4)
        got = b.load_rows(words, start_row=4)
        _assert_same_state(a, b)
        assert ref.as_dict() == got.as_dict()

    def test_single_version_bump_and_single_flush(self):
        a, _ = _fresh_pair("fefet2t")
        words = _words(12, 16, seed=9)

        class _CountingCache:
            # TrajectoryCache uses __slots__, so spy via a tiny proxy.
            def __init__(self, inner):
                self.inner = inner
                self.flushes = 0

            def get(self, key):
                return self.inner.get(key)

            def put(self, key, value):
                self.inner.put(key, value)

            def invalidate(self):
                self.flushes += 1
                self.inner.invalidate()

        spy = _CountingCache(a._ml_cache)
        a._ml_cache = spy
        before = a._content_version
        a.load_rows(words)
        assert a._content_version == before + 1
        assert spy.flushes == 1

    def test_bounds_and_width_errors(self):
        a, _ = _fresh_pair("fefet2t")
        words = _words(12, 17, seed=11)
        with pytest.raises(TCAMError):
            a.load_rows(words)
        with pytest.raises(TCAMError):
            a.load_rows(_words(12, 4, seed=11), start_row=13)
        with pytest.raises(TCAMError):
            a.load_rows(_words(10, 2, seed=11))

    def test_empty_block_is_a_no_op(self):
        a, _ = _fresh_pair("fefet2t")
        before = a._content_version
        ledger = a.load_rows([])
        assert ledger.total == 0.0
        assert a._content_version == before
        assert not a.valid_mask().any()


class TestChipLoadRows:
    def _chip_pair(self, gating=None, n_banks=3, rows=8, cols=12):
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=rows, cols=cols)

        def factory():
            return build_array(spec, geo)

        return (
            TCAMChip(factory, n_banks=n_banks, gating=gating),
            TCAMChip(factory, n_banks=n_banks, gating=gating),
        )

    def test_ledger_identical_to_write_loop_across_banks(self):
        ref_chip, bulk_chip = self._chip_pair()
        words = _words(12, 20, seed=13)  # spans 2.5 banks
        ref = ref_chip.load(words)
        got = bulk_chip.load_rows(words)
        for ra, rb in zip(ref_chip.banks, bulk_chip.banks):
            _assert_same_state(ra, rb)
        assert ref.as_dict() == got.as_dict()
        assert ref.total == got.total

    def test_start_row_offset_spans_bank_boundary(self):
        ref_chip, bulk_chip = self._chip_pair()
        words = _words(12, 10, seed=17)
        start = 5  # rows 5..14 touch banks 0 and 1
        from repro.energy.accounting import EnergyLedger

        ref_ledger = EnergyLedger()
        for i, w in enumerate(words):
            ref_ledger.merge(ref_chip.write(start + i, w))
        got = bulk_chip.load_rows(words, start_row=start)
        for ra, rb in zip(ref_chip.banks, bulk_chip.banks):
            _assert_same_state(ra, rb)
        assert ref_ledger.as_dict() == got.as_dict()

    def test_gated_chip_wakes_each_touched_bank_once(self):
        gating = GatingPolicy(
            gate_idle_banks=True, wakeup_latency=1e-9, wakeup_energy=2e-12
        )
        ref_chip, bulk_chip = self._chip_pair(gating=gating)
        words = _words(12, 20, seed=19)
        ref = ref_chip.load(words)
        got = bulk_chip.load_rows(words)
        assert ref.as_dict() == got.as_dict()

    def test_capacity_error(self):
        _, chip = self._chip_pair()
        with pytest.raises(CapacityError):
            chip.load_rows(_words(12, 25, seed=23))
        with pytest.raises(CapacityError):
            chip.load_rows(_words(12, 4, seed=23), start_row=22)
