"""Tests for the NAND-type FeFET TCAM array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.energy import EnergyComponent
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, NANDTCAMArray, random_word, word_from_string
from repro.tcam.trit import Trit, nand_drive_vector, nand_sl_drive


def _loaded(rows=8, cols=16, seed=0, x_fraction=0.3):
    rng = np.random.default_rng(seed)
    arr = NANDTCAMArray(ArrayGeometry(rows, cols))
    words = [random_word(cols, rng, x_fraction=x_fraction) for _ in range(rows)]
    arr.load(words)
    return arr, words, rng


class TestDriveConvention:
    def test_x_raises_both_lines(self):
        assert nand_sl_drive(Trit.X) == (1, 1)

    def test_specified_symbols(self):
        assert nand_sl_drive(Trit.ZERO) == (1, 0)
        assert nand_sl_drive(Trit.ONE) == (0, 1)

    def test_vector_packing(self):
        assert nand_drive_vector(word_from_string("X")) == (3,)


class TestCorrectness:
    def test_search_agrees_with_reference(self):
        arr, words, rng = _loaded()
        for _ in range(8):
            key = random_word(16, rng)
            out = arr.search(key)
            expected = np.array([w.matches(key) for w in words])
            assert np.array_equal(out.match_mask, expected)
            assert out.functional_errors == 0

    def test_registry_builds_nand(self):
        arr = build_array(get_design("fefet_nand"), ArrayGeometry(4, 8))
        assert isinstance(arr, NANDTCAMArray)

    def test_word_roundtrip(self):
        arr, _, _ = _loaded()
        w = word_from_string("10XX01XX10XX01XX")
        arr.write(3, w)
        assert arr.word_at(3) == w

    def test_write_outcome_contract(self):
        arr = NANDTCAMArray(ArrayGeometry(4, 8))
        out = arr.write(0, word_from_string("10101010"))
        assert out.cells_changed == 8
        assert out.energy.get(EnergyComponent.WRITE) > 0.0
        assert out.latency > 0.0

    def test_unwritten_rows_never_match(self):
        arr = NANDTCAMArray(ArrayGeometry(4, 8))
        arr.write(0, word_from_string("10101010"))
        from repro.tcam.trit import TernaryWord

        out = arr.search(TernaryWord([Trit.X] * 8))
        assert out.match_mask[0]
        assert not out.match_mask[1:].any()

    def test_rejects_bad_widths(self):
        arr, _, rng = _loaded()
        with pytest.raises(TCAMError):
            arr.search(random_word(8, rng))
        with pytest.raises(TCAMError):
            arr.write(0, random_word(8, rng))


class TestNANDTradeoffs:
    def test_miss_dominated_search_cheaper_than_nor(self):
        """The architecture's claim: misses pay (almost) no match-path energy."""
        rng = np.random.default_rng(1)
        geo = ArrayGeometry(32, 64)
        words = [random_word(64, rng) for _ in range(32)]
        nand = NANDTCAMArray(geo)
        nand.load(words)
        nor = build_array(get_design("fefet2t"), geo)
        nor.load(words)
        key = random_word(64, rng)
        e_nand = nand.search(key).energy_total
        e_nor = nor.search(key).energy_total
        assert e_nand < 0.5 * e_nor

    def test_match_path_energy_negligible_on_all_miss(self):
        arr, words, rng = _loaded(x_fraction=0.0)
        key = random_word(16, rng)
        out = arr.search(key)
        if not out.match_mask.any():
            ml = out.energy.get(EnergyComponent.ML_PRECHARGE)
            assert ml < 0.01 * out.energy_total

    def test_delay_grows_superlinearly_with_width(self):
        d16 = NANDTCAMArray(ArrayGeometry(4, 16)).match_delay()
        d64 = NANDTCAMArray(ArrayGeometry(4, 64)).match_delay()
        assert d64 > 6.0 * (d16 * 64 / 16) / 4  # clearly superlinear trend
        assert d64 / d16 > 6.0

    def test_nand_slower_than_nor_at_wide_words(self):
        geo = ArrayGeometry(8, 128)
        nand = NANDTCAMArray(geo)
        nor = build_array(get_design("fefet2t"), geo)
        assert nand.t_eval > nor.t_eval

    def test_search_x_key_matches_everything_and_costs_sl(self):
        arr, words, rng = _loaded()
        from repro.tcam.trit import TernaryWord

        out = arr.search(TernaryWord([Trit.X] * 16))
        assert out.match_mask.all()
        # NAND X-search raises both lines of every column.
        assert out.energy.get(EnergyComponent.SEARCHLINE) > 0.0
