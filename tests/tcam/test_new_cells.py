"""The multi-bit (SEE-MCAM) and analog (FeCAM) cell descriptors."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import TCAMError
from repro.tcam import ArrayGeometry
from repro.tcam.array import TCAMArray
from repro.tcam.cells import (
    FeCAMCell,
    FeCAMCellParams,
    FeFET2TCell,
    SEEMCAMCell,
    SEEMCAMCellParams,
    get_cell,
)
from repro.tcam.trit import Trit, random_word


class TestSEEMCAMCell:
    def test_bits_set_level_count_and_density(self):
        for bits in (1, 2, 3, 4):
            cell = SEEMCAMCell(SEEMCAMCellParams(bits=bits))
            assert cell.n_levels == 2**bits
            assert cell.bits_per_cell == float(bits)

    def test_bits_bounds_enforced(self):
        with pytest.raises(TCAMError):
            SEEMCAMCellParams(bits=0)
        with pytest.raises(TCAMError):
            SEEMCAMCellParams(bits=5)

    def test_footprint_matches_binary_cell(self):
        """Density comes from finer programming, not more silicon."""
        mlc = SEEMCAMCell()
        binary = FeFET2TCell()
        assert mlc.area_f2 == binary.area_f2
        assert mlc.transistor_count == binary.transistor_count

    def test_adjacent_level_margin_weaker_than_binary(self):
        """The margin-setting mismatch is one level step, not the full window."""
        mlc = SEEMCAMCell()
        binary = FeFET2TCell()
        assert 0.0 < mlc.i_pulldown(0.5) < binary.i_pulldown(0.5)

    def test_more_bits_weaker_margin(self):
        i2 = SEEMCAMCell(SEEMCAMCellParams(bits=2)).i_pulldown(0.5)
        i3 = SEEMCAMCell(SEEMCAMCellParams(bits=3)).i_pulldown(0.5)
        assert i3 < i2

    def test_write_pays_program_verify_per_extra_bit(self):
        binary = FeFET2TCell()
        base = binary.write_cost(Trit.ZERO, Trit.ONE)
        for bits in (1, 2, 3):
            cell = SEEMCAMCell(SEEMCAMCellParams(bits=bits))
            cost = cell.write_cost(Trit.ZERO, Trit.ONE)
            scale = 1.0 + cell.mb_params.verify_overhead * (bits - 1)
            assert cost.energy == pytest.approx(base.energy * scale)
            assert cell.write_cost(Trit.ONE, Trit.ONE).energy == 0.0

    def test_accuracy_decreases_with_bits(self):
        accs = [
            SEEMCAMCell(SEEMCAMCellParams(bits=b)).match_accuracy()
            for b in (1, 2, 3, 4)
        ]
        assert all(0.0 < a <= 1.0 for a in accs)
        assert accs == sorted(accs, reverse=True)

    def test_ideal_placement_is_exact(self):
        cell = SEEMCAMCell(SEEMCAMCellParams(level_sigma=0.0))
        assert cell.match_accuracy() == 1.0

    def test_functional_in_an_array(self):
        cell = get_cell("seemcam")
        array = TCAMArray(cell, ArrayGeometry(8, 16))
        rng = np.random.default_rng(42)
        words = [random_word(16, rng, x_fraction=0.3) for _ in range(8)]
        array.load(words)
        out = array.search(words[3])
        assert out.match_mask[3]
        assert out.functional_errors == 0
        assert out.energy.total > 0.0


class TestFeCAMCell:
    def test_density_from_window_ratio(self):
        cell = FeCAMCell()
        states = cell.params.base.fefet.memory_window / (
            2.0 * cell.params.half_window
        )
        assert cell.bits_per_cell == pytest.approx(math.log2(states))
        assert cell.bits_per_cell > 1.0

    def test_narrower_window_buys_bits(self):
        wide = FeCAMCell(FeCAMCellParams(half_window=0.2))
        narrow = FeCAMCell(FeCAMCellParams(half_window=0.1))
        assert narrow.bits_per_cell > wide.bits_per_cell

    def test_window_bounds_enforced(self):
        with pytest.raises(TCAMError):
            FeCAMCellParams(half_window=0.0)
        with pytest.raises(TCAMError):
            FeCAMCellParams(half_window=10.0)
        with pytest.raises(TCAMError):
            FeCAMCellParams(sigma_program=-0.1)
        with pytest.raises(TCAMError):
            FeCAMCellParams(verify_pulses=-1)

    def test_analog_margin_cost(self):
        """Match-side leakage sits orders above the digital HVT path."""
        analog = FeCAMCell()
        binary = FeFET2TCell()
        assert analog.i_leak(0.5) > 100.0 * binary.i_leak(0.5)
        assert analog.i_pulldown(0.5) > analog.i_leak(0.5)

    def test_boundary_mismatch_weaker_than_binary(self):
        analog = FeCAMCell()
        binary = FeFET2TCell()
        assert 0.0 < analog.i_pulldown(0.5) < binary.i_pulldown(0.5)

    def test_write_pays_verify_pulses(self):
        cell = FeCAMCell()
        binary = FeFET2TCell()
        base = binary.write_cost(Trit.ZERO, Trit.ONE)
        cost = cell.write_cost(Trit.ZERO, Trit.ONE)
        scale = 1.0 + cell.params.verify_pulses
        assert cost.energy == pytest.approx(base.energy * scale)
        assert cost.latency == pytest.approx(base.latency * scale)
        assert cell.write_cost(Trit.ONE, Trit.ONE).energy == 0.0

    def test_accuracy_from_program_noise(self):
        cell = FeCAMCell()
        expected = math.erf(
            cell.params.half_window / (math.sqrt(2.0) * cell.params.sigma_program)
        )
        assert cell.match_accuracy() == pytest.approx(expected)
        ideal = FeCAMCell(FeCAMCellParams(sigma_program=0.0))
        assert ideal.match_accuracy() == 1.0

    def test_accuracy_improves_with_wider_window(self):
        wide = FeCAMCell(FeCAMCellParams(half_window=0.15))
        narrow = FeCAMCell(FeCAMCellParams(half_window=0.08))
        assert wide.match_accuracy() > narrow.match_accuracy()

    def test_functional_to_moderate_word_width(self):
        """The default window keeps exact match working at 32 columns."""
        cell = get_cell("fecam")
        array = TCAMArray(cell, ArrayGeometry(8, 32))
        rng = np.random.default_rng(7)
        words = [random_word(32, rng, x_fraction=0.3) for _ in range(8)]
        array.load(words)
        out = array.search(words[0])
        assert out.match_mask[0]
        assert out.functional_errors == 0
