"""Tests for the priority encoder and multi-match reducer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TCAMError
from repro.tcam.priority import MatchReducer, PriorityEncoder


class TestPriorityEncoder:
    def test_first_match(self):
        pe = PriorityEncoder(4)
        assert pe.encode(np.array([False, True, True, False])) == 1

    def test_no_match_is_none(self):
        pe = PriorityEncoder(4)
        assert pe.encode(np.zeros(4, dtype=bool)) is None

    def test_row_zero_wins(self):
        pe = PriorityEncoder(4)
        assert pe.encode(np.ones(4, dtype=bool)) == 0

    def test_stage_count_log2(self):
        assert PriorityEncoder(1024).n_stages == 10
        assert PriorityEncoder(1).n_stages == 1

    def test_energy_scales_with_rows(self):
        assert PriorityEncoder(1024).energy_per_search == pytest.approx(
            16 * PriorityEncoder(64).energy_per_search
        )

    def test_delay_scales_with_stages(self):
        assert PriorityEncoder(1024).delay > PriorityEncoder(16).delay

    def test_rejects_wrong_mask_shape(self):
        pe = PriorityEncoder(4)
        with pytest.raises(TCAMError):
            pe.encode(np.zeros(5, dtype=bool))

    def test_rejects_bad_row_count(self):
        with pytest.raises(TCAMError):
            PriorityEncoder(0)

    def test_rejects_negative_costs(self):
        with pytest.raises(TCAMError):
            PriorityEncoder(4, e_per_row=-1.0)


class TestMatchReducer:
    def test_all_matches_in_order(self):
        mr = MatchReducer(PriorityEncoder(5))
        mask = np.array([True, False, True, False, True])
        assert mr.reduce(mask) == [0, 2, 4]

    def test_empty(self):
        mr = MatchReducer(PriorityEncoder(3))
        assert mr.reduce(np.zeros(3, dtype=bool)) == []

    def test_rejects_wrong_shape(self):
        mr = MatchReducer(PriorityEncoder(3))
        with pytest.raises(TCAMError):
            mr.reduce(np.zeros(4, dtype=bool))
