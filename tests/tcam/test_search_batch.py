"""Equivalence suite: the batched search engine vs sequential scalar search.

The batch path must be *bit-identical* to calling ``search()`` key by key:
same match masks, same first match, same per-component ledger floats,
same delays, same histograms -- including the sequential search-line
toggle semantics (key k toggles against key k-1).  The suite runs every
registered design (covering both sensing styles and all cell
technologies), masked keys, row masks, and the cache-invalidation and
LRU-bounding behavior of the trajectory cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_designs, build_array, get_design
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, TrajectoryCache, mismatch_counts_batch, pack_keys
from repro.tcam.trit import TernaryWord, Trit, mismatch_counts, random_word, word_from_string


def _loaded_pair(design_name, rows=16, cols=24, seed=7, x_fraction=0.2):
    """Two identically-written arrays (one for scalar, one for batch)."""
    spec = get_design(design_name)
    geo = ArrayGeometry(rows=rows, cols=cols)
    a = build_array(spec, geo)
    b = build_array(spec, geo)
    rng = np.random.default_rng(seed)
    words = [random_word(cols, rng, x_fraction) for _ in range(rows)]
    for i, w in enumerate(words):
        a.write(i, w)
        b.write(i, w)
    return a, b


def _assert_outcomes_identical(scalar, batch):
    assert len(scalar) == len(batch)
    for s, b in zip(scalar, batch):
        assert np.array_equal(s.match_mask, b.match_mask)
        assert s.first_match == b.first_match
        assert s.search_delay == b.search_delay
        assert s.cycle_time == b.cycle_time
        assert s.miss_histogram == b.miss_histogram
        assert s.functional_errors == b.functional_errors
        s_breakdown = s.energy.breakdown()
        b_breakdown = b.energy.breakdown()
        assert set(s_breakdown) == set(b_breakdown)
        for component, value in s_breakdown.items():
            # Exact float equality: the batch path must book the very
            # same numbers, not merely close ones.
            assert b_breakdown[component] == value, component
        assert s.energy.total == b.energy.total


SEARCHABLE = [spec.name for spec in all_designs() if spec.sensing != "nand"]
PRECHARGE = [spec.name for spec in all_designs() if spec.sensing == "precharge"]


class TestBatchEquivalence:
    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_bit_identical_to_sequential(self, design):
        a, b = _loaded_pair(design)
        rng = np.random.default_rng(11)
        keys = [random_word(24, rng, x_fraction=0.15) for _ in range(24)]
        scalar = [a.search(k) for k in keys]
        batch = b.search_batch(keys)
        _assert_outcomes_identical(scalar, batch)

    @pytest.mark.parametrize("design", SEARCHABLE)
    def test_toggle_energy_ordering(self, design):
        """SL energy depends on key order; the batch must thread it."""
        a, b = _loaded_pair(design)
        rng = np.random.default_rng(3)
        keys = [random_word(24, rng) for _ in range(6)]
        # Repeat a key back-to-back: zero toggles on the repeat.
        keys = [keys[0], keys[0]] + keys[1:]
        scalar = [a.search(k) for k in keys]
        batch = b.search_batch(keys)
        _assert_outcomes_identical(scalar, batch)
        assert a._last_drive == b._last_drive
        # And a follow-up scalar search on each array still agrees.
        follow = random_word(24, np.random.default_rng(5))
        _assert_outcomes_identical([a.search(follow)], [b.search(follow)])

    def test_masked_keys(self):
        a, b = _loaded_pair("fefet2t")
        rng = np.random.default_rng(23)
        keys = [random_word(24, rng, x_fraction=0.6) for _ in range(12)]
        keys.append(TernaryWord(np.full(24, int(Trit.X), dtype=np.int8)))  # all-X
        _assert_outcomes_identical([a.search(k) for k in keys], b.search_batch(keys))

    def test_row_mask(self):
        a, b = _loaded_pair("cmos16t")
        rng = np.random.default_rng(29)
        mask = rng.random(16) < 0.5
        keys = [random_word(24, rng) for _ in range(8)]
        scalar = [a.search(k, row_mask=mask) for k in keys]
        batch = b.search_batch(keys, row_mask=mask)
        _assert_outcomes_identical(scalar, batch)

    def test_all_rows_masked_out(self):
        a, b = _loaded_pair("fefet2t")
        mask = np.zeros(16, dtype=bool)
        keys = [random_word(24, np.random.default_rng(1)) for _ in range(3)]
        scalar = [a.search(k, row_mask=mask) for k in keys]
        batch = b.search_batch(keys, row_mask=mask)
        _assert_outcomes_identical(scalar, batch)

    def test_partially_empty_array(self):
        """Invalid (never-written) rows must not match in either path."""
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=8, cols=16)
        a, b = build_array(spec, geo), build_array(spec, geo)
        rng = np.random.default_rng(17)
        for i in range(4):
            w = random_word(16, rng)
            a.write(i, w)
            b.write(i, w)
        keys = [random_word(16, rng) for _ in range(6)]
        _assert_outcomes_identical([a.search(k) for k in keys], b.search_batch(keys))

    def test_empty_batch(self):
        a, _ = _loaded_pair("fefet2t")
        assert a.search_batch([]) == []

    def test_width_mismatch_rejected(self):
        a, _ = _loaded_pair("fefet2t")
        with pytest.raises(TCAMError):
            a.search_batch([word_from_string("101")])

    def test_mixed_width_batch_rejected(self):
        a, _ = _loaded_pair("fefet2t")
        rng = np.random.default_rng(2)
        with pytest.raises(TCAMError):
            a.search_batch([random_word(24, rng), random_word(23, rng)])

    def test_interleaving_scalar_and_batch(self):
        """Scalar and batch searches compose on one array."""
        a, b = _loaded_pair("fefet2t")
        rng = np.random.default_rng(41)
        keys = [random_word(24, rng) for _ in range(9)]
        scalar = [a.search(k) for k in keys]
        mixed = [b.search(keys[0])] + b.search_batch(keys[1:5]) + [
            b.search(keys[5])
        ] + b.search_batch(keys[6:])
        _assert_outcomes_identical(scalar, mixed)


class TestNearestMatchBatch:
    @pytest.mark.parametrize("design", PRECHARGE)
    def test_bit_identical_to_sequential(self, design):
        a, b = _loaded_pair(design)
        rng = np.random.default_rng(13)
        keys = [random_word(24, rng, x_fraction=0.1) for _ in range(10)]
        scalar = [a.nearest_match(k) for k in keys]
        batch = b.nearest_match_batch(keys)
        for s, x in zip(scalar, batch):
            assert s.row == x.row
            assert s.distance == x.distance
            assert s.search_delay == x.search_delay
            assert s.energy.breakdown() == x.energy.breakdown()

    def test_empty_array(self):
        spec = get_design("fefet2t")
        a = build_array(spec, ArrayGeometry(rows=4, cols=8))
        outcomes = a.nearest_match_batch([random_word(8, np.random.default_rng(0))])
        assert outcomes[0].row is None

    def test_requires_precharge(self):
        a, _ = _loaded_pair("fefet_cr")
        with pytest.raises(TCAMError):
            a.nearest_match_batch([random_word(24, np.random.default_rng(0))])


class TestTrajectoryCache:
    def test_write_invalidates(self):
        """A write between searches provably flushes the cache."""
        a, _ = _loaded_pair("fefet2t")
        rng = np.random.default_rng(31)
        keys = [random_word(24, rng) for _ in range(8)]
        a.search_batch(keys)
        assert len(a.ml_cache) > 0
        before = a.ml_cache_stats()["invalidations"]
        a.write(0, random_word(24, rng))
        assert len(a.ml_cache) == 0
        assert a.ml_cache_stats()["invalidations"] == before + 1
        # And results after the write still match a fresh scalar array.
        spec = get_design("fefet2t")
        fresh = build_array(spec, ArrayGeometry(rows=16, cols=24))
        for i in range(16):
            fresh.write(i, a.word_at(i))
        fresh._last_drive = a._last_drive
        _assert_outcomes_identical([fresh.search(k) for k in keys], a.search_batch(keys))

    def test_invalidate_row_flushes(self):
        a, _ = _loaded_pair("fefet2t")
        a.search_batch([random_word(24, np.random.default_rng(0)) for _ in range(4)])
        assert len(a.ml_cache) > 0
        a.invalidate(2)
        assert len(a.ml_cache) == 0

    def test_second_batch_hits(self):
        a, _ = _loaded_pair("fefet2t")
        rng = np.random.default_rng(37)
        keys = [random_word(24, rng) for _ in range(16)]
        a.search_batch(keys)
        stats_first = a.ml_cache_stats()
        a.search_batch(keys)
        stats_second = a.ml_cache_stats()
        # Second pass over the same keys computes nothing new.
        assert stats_second["misses"] == stats_first["misses"]
        assert stats_second["hits"] > stats_first["hits"]

    def test_hit_rate_high_on_large_batch(self):
        a, _ = _loaded_pair("fefet2t", rows=32)
        rng = np.random.default_rng(43)
        keys = [random_word(24, rng) for _ in range(200)]
        a.search_batch(keys)
        assert a.ml_cache_stats()["hit_rate"] > 0.8

    def test_lru_bound_and_eviction(self):
        cache = TrajectoryCache(maxsize=3)
        for i in range(5):
            cache.put(("k", i), i)
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 2
        assert cache.get(("k", 0)) is None  # evicted
        assert cache.get(("k", 4)) == 4

    def test_lru_recency(self):
        cache = TrajectoryCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_rejects_bad_maxsize(self):
        with pytest.raises(TCAMError):
            TrajectoryCache(maxsize=0)

    def test_contains_does_not_count(self):
        cache = TrajectoryCache()
        assert "x" not in cache
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_batch_correct_even_with_tiny_cache(self):
        """More distinct classes than cache slots still yields exact results."""
        a, b = _loaded_pair("fefet2t")
        b._ml_cache = TrajectoryCache(maxsize=2)
        rng = np.random.default_rng(47)
        keys = [random_word(24, rng, x_fraction=0.3) for _ in range(16)]
        _assert_outcomes_identical([a.search(k) for k in keys], b.search_batch(keys))


class TestTernaryWordFastPath:
    def test_int8_array_accepted(self):
        w = TernaryWord(np.array([0, 1, 2, 1], dtype=np.int8))
        assert str(w) == "01X1"

    def test_invalid_code_rejected(self):
        with pytest.raises(TCAMError):
            TernaryWord(np.array([0, 3, 1], dtype=np.int8))
        with pytest.raises(TCAMError):
            TernaryWord(np.array([-1, 0], dtype=np.int8))

    def test_empty_array_rejected(self):
        with pytest.raises(TCAMError):
            TernaryWord(np.array([], dtype=np.int8))

    def test_fast_path_copies(self):
        src = np.array([0, 1, 2], dtype=np.int8)
        w = TernaryWord(src)
        src[0] = 1
        assert w[0] is Trit.ZERO

    def test_matches_slow_path(self):
        data = [0, 1, 2, 0, 1]
        assert TernaryWord(np.array(data, dtype=np.int8)) == TernaryWord(data)


class TestPackHelpers:
    def test_pack_keys_shape_and_values(self):
        rng = np.random.default_rng(5)
        keys = [random_word(12, rng, 0.2) for _ in range(7)]
        packed = pack_keys(keys)
        assert packed.shape == (7, 12)
        for k, key in enumerate(keys):
            assert np.array_equal(packed[k], key.as_array())

    def test_pack_rejects_empty(self):
        with pytest.raises(TCAMError):
            pack_keys([])

    def test_mismatch_counts_batch_matches_scalar(self):
        rng = np.random.default_rng(9)
        stored = np.stack(
            [random_word(10, rng, 0.3).as_array() for _ in range(6)]
        )
        keys = [random_word(10, rng, 0.2) for _ in range(5)]
        packed = pack_keys(keys)
        batch = mismatch_counts_batch(stored, packed)
        for k, key in enumerate(keys):
            assert np.array_equal(batch[k], mismatch_counts(stored, key.as_array()))


class TestWorkloadBatchAPIs:
    def test_packetclass_batch_equals_scalar(self):
        from repro.workloads.packetclass import (
            RULE_BITS,
            random_packets,
            synthetic_acl,
        )

        rng = np.random.default_rng(19)
        ruleset = synthetic_acl(8, rng)
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=max(ruleset.n_tcam_rows, 1), cols=RULE_BITS)
        a, b = build_array(spec, geo), build_array(spec, geo)
        ruleset.deploy(a)
        ruleset.deploy(b)
        packets = random_packets(ruleset, 10, rng)
        scalar = [ruleset.classify_tcam(a, p) for p in packets]
        batch = ruleset.classify_tcam_batch(b, packets)
        for (r_s, o_s), (r_b, o_b) in zip(scalar, batch):
            assert r_s == r_b
            assert o_s.energy.total == o_b.energy.total

    def test_iproute_batch_equals_scalar(self):
        from repro.workloads.iproute import (
            ADDRESS_BITS,
            synthetic_routing_table,
            trace_addresses,
        )

        rng = np.random.default_rng(21)
        table = synthetic_routing_table(12, rng)
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=16, cols=ADDRESS_BITS)
        a, b = build_array(spec, geo), build_array(spec, geo)
        table.deploy(a)
        table.deploy(b)
        addresses = trace_addresses(table, 10, rng)
        scalar = [table.lookup_tcam(a, addr) for addr in addresses]
        batch = table.lookup_tcam_batch(b, addresses)
        for (r_s, o_s), (r_b, o_b) in zip(scalar, batch):
            assert r_s == r_b
            assert o_s.energy.total == o_b.energy.total

    def test_hdc_batch_equals_scalar(self):
        from repro.workloads.hdc import HDCMemory

        rng = np.random.default_rng(25)
        spec = get_design("fefet2t")
        geo = ArrayGeometry(rows=4, cols=32)
        a, b = build_array(spec, geo), build_array(spec, geo)
        mem_a, mem_b = HDCMemory(a, 0.3), HDCMemory(b, 0.3)
        for label in range(3):
            examples = rng.integers(0, 2, size=(5, 32))
            mem_a.train_class(label, examples)
            mem_b.train_class(label, examples)
        queries = rng.integers(0, 2, size=(6, 32)).astype(np.int8)
        scalar = [mem_a.classify(q) for q in queries]
        batch = mem_b.classify_batch(queries)
        for s, x in zip(scalar, batch):
            assert s.label == x.label
            assert s.distance == x.distance
            assert s.energy == x.energy
