"""Tests for ternary values and words, including property-based algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TCAMError
from repro.tcam.trit import (
    TernaryWord,
    Trit,
    drive_vector,
    mismatch_counts,
    prefix_word,
    random_word,
    sl_drive,
    word_from_int,
    word_from_string,
)

trits = st.sampled_from([Trit.ZERO, Trit.ONE, Trit.X])
words = st.lists(trits, min_size=1, max_size=24).map(TernaryWord)


class TestTrit:
    def test_from_char_all_forms(self):
        assert Trit.from_char("0") is Trit.ZERO
        assert Trit.from_char("1") is Trit.ONE
        assert Trit.from_char("x") is Trit.X
        assert Trit.from_char("X") is Trit.X

    def test_from_char_rejects_garbage(self):
        with pytest.raises(TCAMError):
            Trit.from_char("2")

    def test_roundtrip_chars(self):
        for t in Trit:
            assert Trit.from_char(t.to_char()) is t

    @given(a=trits, b=trits)
    def test_match_symmetric(self, a, b):
        assert a.matches(b) == b.matches(a)

    @given(a=trits)
    def test_x_matches_everything(self, a):
        assert Trit.X.matches(a)
        assert a.matches(Trit.X)

    def test_specified_mismatch(self):
        assert not Trit.ZERO.matches(Trit.ONE)


class TestTernaryWord:
    def test_parse_and_str_roundtrip(self):
        w = word_from_string("10XX01")
        assert str(w) == "10XX01"

    def test_rejects_empty(self):
        with pytest.raises(TCAMError):
            word_from_string("")

    def test_rejects_bad_values(self):
        with pytest.raises(TCAMError):
            TernaryWord([0, 1, 3])

    def test_equality_and_hash(self):
        a = word_from_string("10X")
        b = word_from_string("10X")
        c = word_from_string("100")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_indexing_and_slicing(self):
        w = word_from_string("10X1")
        assert w[0] is Trit.ONE
        assert str(w[1:3]) == "0X"

    def test_with_trit(self):
        w = word_from_string("000")
        w2 = w.with_trit(1, Trit.X)
        assert str(w2) == "0X0"
        assert str(w) == "000"  # original untouched

    def test_x_count_and_specificity(self):
        w = word_from_string("1XX0")
        assert w.x_count() == 2
        assert w.specificity() == 2

    def test_array_readonly(self):
        w = word_from_string("10")
        with pytest.raises(ValueError):
            w.as_array()[0] = 1

    @given(w=words)
    @settings(max_examples=50)
    def test_word_matches_itself(self, w):
        assert w.matches(w)

    @given(w=words)
    @settings(max_examples=50)
    def test_all_x_key_matches_everything(self, w):
        key = TernaryWord([Trit.X] * len(w))
        assert w.matches(key)

    @given(w=words, k=words)
    @settings(max_examples=50)
    def test_match_symmetric_in_stored_and_key(self, w, k):
        if len(w) == len(k):
            assert w.matches(k) == k.matches(w)

    def test_mismatch_count_counts_conducting_cells(self):
        stored = word_from_string("1010")
        key = word_from_string("1111")
        assert stored.mismatch_count(key) == 2

    def test_mismatch_rejects_width_mismatch(self):
        with pytest.raises(TCAMError):
            word_from_string("10").mismatch_count(word_from_string("100"))


class TestVectorizedMismatch:
    def test_matches_scalar_path(self, rng):
        stored_words = [random_word(16, rng, 0.3) for _ in range(20)]
        key = random_word(16, rng)
        matrix = np.stack([w.as_array() for w in stored_words])
        vec = mismatch_counts(matrix, key.as_array())
        for i, w in enumerate(stored_words):
            assert vec[i] == w.mismatch_count(key)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(TCAMError):
            mismatch_counts(np.zeros((3, 4), dtype=np.int8), np.zeros(5, dtype=np.int8))


class TestConstructors:
    def test_word_from_int_msb_first(self):
        assert str(word_from_int(5, 4)) == "0101"

    def test_word_from_int_rejects_overflow(self):
        with pytest.raises(TCAMError):
            word_from_int(16, 4)

    def test_prefix_word(self):
        assert str(prefix_word(0b1010, 2, 4)) == "10XX"

    def test_prefix_word_full_length(self):
        assert str(prefix_word(0b1010, 4, 4)) == "1010"

    def test_prefix_word_rejects_bad_length(self):
        with pytest.raises(TCAMError):
            prefix_word(0, 5, 4)

    def test_random_word_x_fraction_extremes(self, rng):
        w0 = random_word(64, rng, x_fraction=0.0)
        w1 = random_word(64, rng, x_fraction=1.0)
        assert w0.x_count() == 0
        assert w1.x_count() == 64

    def test_random_word_rejects_bad_fraction(self, rng):
        with pytest.raises(TCAMError):
            random_word(8, rng, x_fraction=1.5)


class TestDriveVector:
    def test_packing(self):
        assert drive_vector(word_from_string("01X")) == (
            sl_drive(Trit.ZERO)[0] * 2 + sl_drive(Trit.ZERO)[1],
            sl_drive(Trit.ONE)[0] * 2 + sl_drive(Trit.ONE)[1],
            0,
        )

    def test_x_drives_nothing(self):
        assert drive_vector(word_from_string("XX")) == (0, 0)
