"""Tests for cell-wear tracking and endurance accounting."""

from __future__ import annotations

import pytest

from repro.core import build_array, get_design
from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, word_from_string


def _array(rows=4, cols=8):
    return build_array(get_design("fefet2t"), ArrayGeometry(rows, cols))


class TestWearCounting:
    def test_fresh_array_has_zero_wear(self):
        arr = _array()
        assert arr.wear_counts().sum() == 0
        assert arr.wear_report()["max"] == 0.0

    def test_first_write_counts_changed_cells(self):
        arr = _array()
        arr.write(0, word_from_string("10101010"))
        # All 8 cells change from the erased X state.
        assert arr.wear_counts()[0].sum() == 8

    def test_identical_rewrite_adds_no_wear(self):
        arr = _array()
        w = word_from_string("10X10X10")
        arr.write(0, w)
        before = arr.wear_counts().sum()
        arr.write(0, w)
        assert arr.wear_counts().sum() == before

    def test_single_trit_change_wears_one_cell(self):
        arr = _array()
        arr.write(0, word_from_string("10101010"))
        arr.write(0, word_from_string("00101010"))
        counts = arr.wear_counts()
        assert counts[0, 0] == 2
        assert counts[0, 1:].sum() == 7

    def test_hot_cell_located(self, rng):
        arr = _array()
        for k in range(5):
            arr.write(2, word_from_string("10101010" if k % 2 else "00101010"))
        report = arr.wear_report()
        assert report["hot_row"] == 2.0
        assert report["hot_col"] == 0.0

    def test_wear_counts_is_copy(self):
        arr = _array()
        arr.write(0, word_from_string("10101010"))
        counts = arr.wear_counts()
        counts[:] = 0
        assert arr.wear_counts().sum() == 8


class TestLifetime:
    def test_fresh_array_full_lifetime(self):
        assert _array().remaining_lifetime_fraction(1e10) == 1.0

    def test_lifetime_decreases_with_writes(self):
        arr = _array()
        arr.write(0, word_from_string("10101010"))
        arr.write(0, word_from_string("01010101"))
        assert arr.remaining_lifetime_fraction(100.0) == pytest.approx(1.0 - 2 / 100)

    def test_exhausted_lifetime_clamps_at_zero(self):
        arr = _array()
        arr.write(0, word_from_string("10101010"))
        assert arr.remaining_lifetime_fraction(0.5) == 0.0

    def test_rejects_bad_endurance(self):
        with pytest.raises(TCAMError):
            _array().remaining_lifetime_fraction(0.0)
