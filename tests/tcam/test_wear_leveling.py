"""Tests for the wear-leveling scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import CapacityError, TCAMError
from repro.tcam import ArrayGeometry, random_word
from repro.tcam.writer import WearLevelingScheduler


def _setup(rows=16, cols=16, rotate_period=2):
    array = build_array(get_design("fefet2t"), ArrayGeometry(rows, cols))
    return array, WearLevelingScheduler(array, rotate_period=rotate_period)


def _hot_traffic(sched, rng, table_len=8, n_updates=12, cols=16):
    """Repeatedly rewrite entry 0 (the hot row) of an otherwise fixed table."""
    table = [random_word(cols, rng) for _ in range(table_len)]
    for _ in range(n_updates):
        table[0] = random_word(cols, rng)
        sched.update(table)
    return table


class TestCorrectness:
    def test_lookup_returns_logical_index(self, rng):
        array, sched = _setup()
        table = [random_word(16, rng) for _ in range(8)]
        sched.update(table)
        for _ in range(5):  # trigger rotations
            sched.update(table)
        assert sched.base_row > 0  # table has moved
        logical, outcome = sched.lookup(table[3])
        assert logical == 3
        assert outcome.functional_errors == 0

    def test_priority_order_preserved_after_rotation(self, rng):
        array, sched = _setup()
        # Two entries that both match the same key; entry 1 must win.
        shared = random_word(16, rng)
        table = [shared, shared.with_trit(0, shared[0])] + [
            random_word(16, rng) for _ in range(4)
        ]
        for _ in range(6):
            sched.update(table)
        logical, _ = sched.lookup(shared)
        assert logical == 0

    def test_shrinking_table_invalidates_tail(self, rng):
        array, sched = _setup()
        table = [random_word(16, rng) for _ in range(8)]
        sched.update(table)
        sched.update(table[:4])
        logical, _ = sched.lookup(table[6])
        assert logical is None

    def test_rejects_overflow(self, rng):
        array, sched = _setup(rows=4)
        with pytest.raises(CapacityError):
            sched.update([random_word(16, rng) for _ in range(5)])

    def test_rejects_bad_period(self):
        array, _ = _setup()
        with pytest.raises(TCAMError):
            WearLevelingScheduler(array, rotate_period=0)

    def test_translation_bounds_checked(self, rng):
        array, sched = _setup()
        sched.update([random_word(16, rng) for _ in range(4)])
        with pytest.raises(TCAMError):
            sched.logical_to_physical(4)
        assert sched.physical_to_logical(15) is None


class TestWearSpreading:
    def test_rotation_spreads_hot_row_wear(self, rng):
        """With spare rows and rotation, the hottest cell's wear drops well
        below the no-rotation case."""
        cols = 16
        rotating_array, rotating = _setup(rows=16, rotate_period=2)
        static_array, static = _setup(rows=16, rotate_period=10**9)

        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        _hot_traffic(rotating, rng_a, n_updates=12, cols=cols)
        _hot_traffic(static, rng_b, n_updates=12, cols=cols)

        worst_rotating = rotating_array.wear_report()["max"]
        worst_static = static_array.wear_report()["max"]
        assert worst_rotating < worst_static

    def test_full_array_cannot_rotate(self, rng):
        """No spare rows -> the base row must stay put."""
        array, sched = _setup(rows=8, rotate_period=1)
        table = [random_word(16, rng) for _ in range(8)]
        for _ in range(4):
            sched.update(table)
        assert sched.base_row == 0

    def test_unchanged_entries_not_rewritten_between_rotations(self, rng):
        array, sched = _setup(rows=16, rotate_period=100)
        table = [random_word(16, rng) for _ in range(6)]
        sched.update(table)
        ledger, _ = sched.update(table)  # identical content, no rotation
        assert ledger.total == 0.0
