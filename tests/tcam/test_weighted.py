"""Tests for the MLC cell and the weighted-distance (analog) array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TCAMError
from repro.tcam import ArrayGeometry, random_word, word_from_string
from repro.tcam.cells.fefet_mlc import MLCFeFETCell, MLCFeFETCellParams
from repro.tcam.weighted import WeightedTCAMArray


class TestMLCCell:
    def test_level_currents_monotone(self):
        cell = MLCFeFETCell()
        currents = [cell.i_pulldown_level(0.9, w) for w in range(1, 5)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_calibrated_levels_give_equal_current_steps(self):
        cell = MLCFeFETCell(MLCFeFETCellParams(n_levels=4, calibrated=True))
        currents = [cell.i_pulldown_level(0.9, w) for w in range(1, 5)]
        for w, i in enumerate(currents, start=1):
            assert i == pytest.approx(currents[-1] * w / 4, rel=0.02)

    def test_uncalibrated_levels_superlinear(self):
        cell = MLCFeFETCell(MLCFeFETCellParams(n_levels=4, calibrated=False))
        currents = [cell.i_pulldown_level(0.9, w) for w in range(1, 5)]
        # Quadratic-ish overdrive: level 2 carries less than half of level 4.
        assert currents[1] < 0.5 * currents[3]

    def test_top_level_matches_binary_cell(self):
        from repro.tcam.cells import FeFET2TCell

        mlc = MLCFeFETCell()
        binary = FeFET2TCell()
        assert mlc.i_pulldown_level(0.9, mlc.n_levels) == pytest.approx(
            binary.i_pulldown(0.9), rel=1e-9
        )

    def test_vt_decreases_with_level(self):
        cell = MLCFeFETCell()
        vts = [cell.vt_at_level(w) for w in range(1, 5)]
        assert all(b < a for a, b in zip(vts, vts[1:]))

    def test_rejects_bad_level(self):
        cell = MLCFeFETCell()
        with pytest.raises(TCAMError):
            cell.i_pulldown_level(0.9, 0)
        with pytest.raises(TCAMError):
            cell.vt_at_level(5)

    def test_rejects_bad_params(self):
        with pytest.raises(TCAMError):
            MLCFeFETCellParams(n_levels=1)

    def test_shares_binary_capacitances(self):
        from repro.tcam.cells import FeFET2TCell

        mlc = MLCFeFETCell()
        binary = FeFET2TCell()
        assert mlc.c_ml_per_cell == binary.c_ml_per_cell
        assert mlc.area_f2 == binary.area_f2


class TestWeightedArray:
    def _loaded(self, rows=12, cols=24, seed=0):
        rng = np.random.default_rng(seed)
        arr = WeightedTCAMArray(ArrayGeometry(rows, cols))
        for r in range(rows):
            arr.write(r, random_word(cols, rng), rng.integers(1, 5, size=cols))
        return arr, rng

    def test_oracle_distance_definition(self):
        arr = WeightedTCAMArray(ArrayGeometry(2, 4))
        arr.write(0, word_from_string("1010"), np.array([4, 3, 2, 1]))
        key = word_from_string("0010")  # mismatch only at column 0
        assert arr.weighted_distance(0, key) == 4

    def test_x_columns_carry_no_weight(self):
        arr = WeightedTCAMArray(ArrayGeometry(1, 4))
        arr.write(0, word_from_string("1X10"), np.array([4, 4, 4, 4]))
        key = word_from_string("0110")
        assert arr.weighted_distance(0, key) == 4  # only column 0 counts

    def test_best_row_has_minimum_distance(self):
        """The winner must be *a* minimum-distance row; ties between rows
        at the same weighted distance are physically indistinguishable in
        the time domain (their leak ensembles differ by femtoseconds)."""
        arr, rng = self._loaded()
        for _ in range(6):
            key = random_word(24, rng)
            out = arr.distance_search(key)
            assert out.distances[out.best_row] == out.distances.min()

    def test_crossing_times_rank_distances(self):
        import scipy.stats as st

        arr, rng = self._loaded(seed=5)
        key = random_word(24, rng)
        out = arr.distance_search(key)
        mask = np.isfinite(out.crossing_times)
        rho = st.spearmanr(out.crossing_times[mask], -out.distances[mask]).statistic
        assert rho > 0.98

    def test_exact_match_row_never_crosses(self):
        rng = np.random.default_rng(2)
        arr = WeightedTCAMArray(ArrayGeometry(3, 16))
        words = [random_word(16, rng) for _ in range(3)]
        for r, w in enumerate(words):
            arr.write(r, w, np.full(16, 4))
        out = arr.distance_search(words[1])
        assert out.crossing_times[1] == np.inf
        assert out.best_row == 1

    def test_energy_positive_and_componentized(self):
        arr, rng = self._loaded()
        out = arr.distance_search(random_word(24, rng))
        from repro.energy import EnergyComponent

        assert out.energy.get(EnergyComponent.ML_PRECHARGE) > 0.0
        assert out.energy.total > 0.0

    def test_write_validates_weights(self):
        arr = WeightedTCAMArray(ArrayGeometry(2, 4))
        with pytest.raises(TCAMError):
            arr.write(0, word_from_string("1010"), np.array([0, 1, 2, 3]))
        with pytest.raises(TCAMError):
            arr.write(0, word_from_string("1010"), np.array([1, 2, 3]))

    def test_invalid_rows_excluded(self):
        arr = WeightedTCAMArray(ArrayGeometry(4, 8))
        arr.write(2, word_from_string("10101010"), np.full(8, 2))
        out = arr.distance_search(word_from_string("10101010"))
        assert out.best_row == 2
        assert np.isinf(out.crossing_times[0])

    def test_rejects_bad_key_width(self):
        arr = WeightedTCAMArray(ArrayGeometry(2, 8))
        with pytest.raises(TCAMError):
            arr.distance_search(word_from_string("101"))
