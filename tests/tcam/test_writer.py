"""Tests for the batch write scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import CapacityError, TCAMError
from repro.tcam import ArrayGeometry, random_word
from repro.tcam.writer import WriteScheduler


def _setup(rows=8, cols=16, seed=0):
    rng = np.random.default_rng(seed)
    arr = build_array(get_design("fefet2t"), ArrayGeometry(rows, cols))
    return arr, WriteScheduler(arr), rng


class TestPlanning:
    def test_fresh_array_writes_everything(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(5)]
        plan = sched.plan(desired)
        assert len(plan.writes) == 5
        assert plan.invalidations == ()
        assert plan.unchanged == ()

    def test_identical_content_is_noop(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(5)]
        sched.update(desired)
        plan = sched.plan(desired)
        assert plan.n_operations == 0
        assert len(plan.unchanged) == 5

    def test_single_change_writes_one_row(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(5)]
        sched.update(desired)
        desired[2] = random_word(16, rng)
        plan = sched.plan(desired)
        assert len(plan.writes) == 1
        assert plan.writes[0][0] == 2

    def test_shrinking_table_invalidates_tail(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(6)]
        sched.update(desired)
        plan = sched.plan(desired[:4])
        assert plan.invalidations == (4, 5)

    def test_rejects_overflow(self, rng):
        arr, sched, _ = _setup(rows=4)
        with pytest.raises(CapacityError):
            sched.plan([random_word(16, rng) for _ in range(5)])

    def test_rejects_width_mismatch(self, rng):
        arr, sched, _ = _setup()
        with pytest.raises(TCAMError):
            sched.plan([random_word(8, rng)])


class TestApplication:
    def test_apply_updates_array(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(3)]
        plan, ledger, latency = sched.update(desired)
        for row, word in enumerate(desired):
            assert arr.word_at(row) == word
        assert ledger.total > 0.0
        assert latency > 0.0

    def test_incremental_update_cheaper_than_rewrite(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(8)]
        _, e_initial, _ = sched.update(desired)

        desired[3] = random_word(16, rng)
        _, e_incremental, _ = sched.update(desired)
        assert e_incremental.total < 0.3 * e_initial.total

    def test_invalidation_applied(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(4)]
        sched.update(desired)
        sched.update(desired[:2])
        assert not arr.valid_mask()[2:].any()

    def test_plan_counter(self, rng):
        arr, sched, _ = _setup()
        assert sched.applied_plans == 0
        sched.update([random_word(16, rng)])
        assert sched.applied_plans == 1

    def test_serial_latency_sums(self, rng):
        arr, sched, _ = _setup()
        desired = [random_word(16, rng) for _ in range(4)]
        plan = sched.plan(desired)
        _, latency = sched.apply(plan)
        # Four rows write serially, each paying one erase+program phase pair.
        per_row = 2 * arr.cell.params.fefet.program_width
        assert latency == pytest.approx(4 * per_row)
