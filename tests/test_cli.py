"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDesigns:
    def test_lists_all_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("cmos16t", "reram2t2r", "fefet2t", "fefet2t_lv", "fefet_cr", "fefet_nand"):
            assert name in out


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        assert main(["compare", "--rows", "8", "--cols", "16", "--searches", "2"]) == 0
        out = capsys.readouterr().out
        assert "E/search" in out
        assert "fefet2t_lv" in out

    def test_error_column_zero(self, capsys):
        main(["compare", "--rows", "8", "--cols", "16", "--searches", "2"])
        out = capsys.readouterr().out
        data_lines = [l for l in out.splitlines() if l.startswith(("cmos", "reram", "fefet"))]
        assert data_lines
        assert all(line.rstrip().endswith("0") for line in data_lines)


class TestMargin:
    def test_reports_margin(self, capsys):
        assert main(["margin", "--design", "fefet2t_lv", "--swing", "0.5",
                     "--rows", "8", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "sense margin" in out
        assert "functional      : True" in out


class TestMonteCarlo:
    def test_runs_small_mc(self, capsys):
        assert main(["mc", "--design", "fefet2t", "--samples", "20",
                     "--rows", "4", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "margin mean" in out


class TestLpm:
    def test_agrees_with_oracle(self, capsys):
        assert main(["lpm", "--routes", "20", "--lookups", "15"]) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: 15/15" in out


class TestAdvise:
    def test_recommends_a_design(self, capsys):
        assert main(["advise", "--rows", "8", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "Design advisor" in out


class TestRetention:
    def test_spec_point(self, capsys):
        assert main(["retention", "--celsius", "85", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "retention       : 0.90" in out

    def test_room_temperature(self, capsys):
        assert main(["retention", "--celsius", "25", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "time to 10% loss" in out


class TestDisturb:
    def test_half_select_report(self, capsys):
        assert main(["disturb", "--scheme", "V/2", "--pulses", "1000"]) == 0
        out = capsys.readouterr().out
        assert "retention" in out

    def test_third_select_retains(self, capsys):
        assert main(["disturb", "--scheme", "V/3", "--pulses", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "retention       : 1.0000" in out or "retention       : 0.99" in out
