"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDesigns:
    def test_lists_all_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("cmos16t", "reram2t2r", "fefet2t", "fefet2t_lv", "fefet_cr", "fefet_nand"):
            assert name in out

    def test_lists_registered_cells(self, capsys):
        main(["designs"])
        out = capsys.readouterr().out
        assert "Registered TCAM cells" in out
        for name in ("fefet_mlc", "seemcam", "fecam"):
            assert name in out


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        assert main(["compare", "--rows", "8", "--cols", "16", "--searches", "2"]) == 0
        out = capsys.readouterr().out
        assert "E/search" in out
        assert "fefet2t_lv" in out

    def test_error_column_zero(self, capsys):
        main(["compare", "--rows", "8", "--cols", "16", "--searches", "2"])
        out = capsys.readouterr().out
        data_lines = [
            line for line in out.splitlines()
            if line.startswith(("cmos", "reram", "fefet"))
        ]
        assert data_lines
        assert all(line.rstrip().endswith("0") for line in data_lines)


class TestMargin:
    def test_reports_margin(self, capsys):
        assert main(["margin", "--design", "fefet2t_lv", "--swing", "0.5",
                     "--rows", "8", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "sense margin" in out
        assert "functional      : True" in out


class TestMonteCarlo:
    def test_runs_small_mc(self, capsys):
        assert main(["mc", "--design", "fefet2t", "--samples", "20",
                     "--rows", "4", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "margin mean" in out

    def test_kernel_flag_leaves_margins_bit_identical(self, capsys):
        """--kernel enables the compiled tables on the array under test;
        margins (and the process fan-out pickling it) must not change."""
        small = ["mc", "--samples", "20", "--rows", "4", "--cols", "16", "--json"]
        assert main(small) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(small + ["--kernel"]) == 0
        kernel = json.loads(capsys.readouterr().out)
        assert plain == kernel
        assert main(small + ["--kernel", "--workers", "2"]) == 0
        assert plain == json.loads(capsys.readouterr().out)


class TestLpm:
    def test_agrees_with_oracle(self, capsys):
        assert main(["lpm", "--routes", "20", "--lookups", "15"]) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: 15/15" in out


class TestAdvise:
    def test_recommends_a_design(self, capsys):
        assert main(["advise", "--rows", "8", "--cols", "16"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "Design advisor" in out


class TestRetention:
    def test_spec_point(self, capsys):
        assert main(["retention", "--celsius", "85", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "retention       : 0.90" in out

    def test_room_temperature(self, capsys):
        assert main(["retention", "--celsius", "25", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "time to 10% loss" in out


class TestDse:
    ARGS = ["dse", "--cell", "fefet2t", "--cell", "seemcam",
            "--rows", "8", "--cols", "16", "--searches", "2"]

    def test_table_mode(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "frontier cells:" in out
        assert "fefet2t" in out

    def test_json_mode_carries_frontier(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "dse"
        assert payload["frontier_size"] >= 1
        assert payload["n_points"] == len(payload["points"])
        assert {row["cell"] for row in payload["points"]} == {"fefet2t", "seemcam"}
        for row in payload["frontier"]:
            assert row["functional_errors"] == 0

    def test_kernel_flag_bit_identical(self, capsys):
        main([*self.ARGS, "--json"])
        plain = json.loads(capsys.readouterr().out)
        main([*self.ARGS, "--kernel", "--json"])
        kernel = json.loads(capsys.readouterr().out)
        assert plain == kernel


class TestReportValidation:
    def test_report_rejects_unknown_schema(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text('{"schema_version": 999}')
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown schema_version"):
            main(["report", "--bench-dir", str(tmp_path),
                  "--output-dir", str(tmp_path / "out"),
                  "--out", str(tmp_path / "REPORT.md")])

    def test_report_counts_validated_artifacts(self, tmp_path, capsys):
        (tmp_path / "BENCH_ok.json").write_text('{"schema_version": 1}')
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        (out_dir / "fig2.txt").write_text("stub artifact\n")
        assert main(["report", "--bench-dir", str(tmp_path),
                     "--output-dir", str(tmp_path / "out"),
                     "--out", str(tmp_path / "REPORT.md")]) == 0
        out = capsys.readouterr().out
        assert "validated 1 benchmark artifact(s)" in out


class TestJsonMode:
    def test_designs_json(self, capsys):
        assert main(["designs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "designs"
        assert {d["key"] for d in payload["designs"]} >= {"cmos16t", "fefet2t"}
        assert all("cell" in d for d in payload["designs"])
        cells = {c["key"] for c in payload["cells"]}
        assert cells >= {"cmos16t", "fefet2t", "seemcam", "fecam"}

    def test_compare_json_with_design_filter(self, capsys):
        assert main(["compare", "--design", "fefet2t", "--rows", "8",
                     "--cols", "16", "--searches", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [d["design"] for d in payload["designs"]] == ["fefet2t"]
        entry = payload["designs"][0]
        assert entry["energy_per_search"] > 0.0
        assert isinstance(entry["energy"], dict)  # ledger as_dict()

    def test_lpm_json_carries_outcome_dict(self, capsys):
        assert main(["lpm", "--routes", "10", "--lookups", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["oracle_agreement"] == 5
        outcome = payload["last_outcome"]
        assert outcome["type"] == "SearchOutcome"
        for key in ("match_mask", "first_match", "energy", "energy_total",
                    "search_delay", "cycle_time"):
            assert key in outcome

    def test_lpm_rows_flag(self, capsys):
        assert main(["lpm", "--routes", "10", "--lookups", "5",
                     "--rows", "64", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["rows"] == 64

    def test_mc_json(self, capsys):
        assert main(["mc", "--design", "fefet2t", "--samples", "20",
                     "--rows", "4", "--cols", "16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"] == 20
        assert "margin_mean" in payload

    def test_retention_json(self, capsys):
        assert main(["retention", "--celsius", "85", "--years", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 < payload["retention_fraction"] <= 1.0


class TestTrace:
    def test_trace_prints_span_and_metrics_tables(self, capsys):
        assert main(["trace", "compare", "--rows", "8", "--cols", "16",
                     "--searches", "2"]) == 0
        out = capsys.readouterr().out
        assert "Design comparison" in out  # the wrapped command still runs
        assert "Trace spans" in out
        assert "array.search" in out
        assert "tcam.searches" in out

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["trace", "lpm", "--routes", "10", "--lookups", "5",
                     "--trace-out", str(trace_path)]) == 0
        records = [json.loads(line) for line in trace_path.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "metrics"}
        span_names = {r["name"] for r in records if r["kind"] == "span"}
        assert "workload.lpm.lookup_batch" in span_names
        assert "array.search_batch" in span_names
        metrics = [r for r in records if r["kind"] == "metrics"][0]["metrics"]
        assert metrics["tcam.searches"] >= 5.0

    def test_trace_rejects_itself(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "trace"])

    def test_observability_off_after_trace(self, capsys):
        from repro import obs

        main(["trace", "designs"])
        assert not obs.is_enabled()


class TestDisturb:
    def test_half_select_report(self, capsys):
        assert main(["disturb", "--scheme", "V/2", "--pulses", "1000"]) == 0
        out = capsys.readouterr().out
        assert "retention" in out

    def test_third_select_retains(self, capsys):
        assert main(["disturb", "--scheme", "V/3", "--pulses", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "retention       : 1.0000" in out or "retention       : 0.99" in out


class TestFaults:
    _SMALL = ["faults", "--rows", "12", "--cols", "12", "--trials", "1",
              "--keys", "6", "--spare-rows", "2", "--density", "0.05"]

    def test_table_mode(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "density" in out and "yield" in out

    def test_json_mode_carries_sweep(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "faults"
        assert payload["repair"] == "spare-rows"
        (point,) = payload["points"]
        assert point["density"] == 0.05
        assert 0.0 <= point["post_repair_yield"] <= 1.0

    def test_traceable(self, capsys):
        from repro import obs

        assert main(["trace"] + self._SMALL) == 0
        assert not obs.is_enabled()
        assert "faults.campaign" in capsys.readouterr().out

    def test_kernel_flag_bit_identical(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(self._SMALL + ["--json", "--kernel"]) == 0
        assert plain == json.loads(capsys.readouterr().out)


class TestCluster:
    _SMALL = ["cluster", "--chips", "1,2", "--policy", "range",
              "--rules", "24", "--cols", "16", "--requests", "60",
              "--churn", "16"]

    def test_table_mode(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "Cluster scaling" in out
        assert "range" in out

    def test_json_carries_frontier(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "cluster"
        assert payload["schema_version"] == 1
        assert payload["config"]["chip_counts"] == [1, 2]
        assert len(payload["points"]) == 2
        for point in payload["points"]:
            assert point["conserved"]
            assert point["churn_integrity"]
            assert point["throughput"] > 0.0

    def test_workers_flag_bit_identical(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(self._SMALL + ["--json", "--workers", "2"]) == 0
        assert serial == json.loads(capsys.readouterr().out)

    def test_traceable(self, capsys):
        from repro import obs

        assert main(["trace"] + self._SMALL) == 0
        assert not obs.is_enabled()
        assert "cluster.search_batch" in capsys.readouterr().out

    def test_bad_policy_rejected(self, capsys):
        assert main(["cluster", "--chips", "1", "--policy", "nope",
                     "--rules", "8", "--cols", "12", "--requests", "10"]) != 0
