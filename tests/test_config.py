"""Tests for the simulation configuration and error hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimConfig, default_config
from repro.errors import (
    AnalysisError,
    CapacityError,
    CircuitError,
    DesignError,
    DeviceError,
    ReproError,
    TCAMError,
    WorkloadError,
)


class TestSimConfig:
    def test_default_is_room_temperature(self):
        assert default_config().temperature_k == pytest.approx(300.0)

    def test_default_is_shared_instance(self):
        assert default_config() is default_config()

    def test_rng_deterministic(self):
        cfg = SimConfig(seed=5)
        a = cfg.rng().integers(0, 1000, 10)
        b = cfg.rng().integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_with_temperature_copies_other_fields(self):
        cfg = SimConfig(seed=9, rel_tol=1e-6)
        hot = cfg.with_temperature(400.0)
        assert hot.temperature_k == 400.0
        assert hot.seed == 9
        assert hot.rel_tol == 1e-6

    def test_frozen(self):
        with pytest.raises(AttributeError):
            default_config().seed = 1  # type: ignore[misc]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DeviceError,
            CircuitError,
            TCAMError,
            CapacityError,
            DesignError,
            AnalysisError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_capacity_is_tcam_error(self):
        assert issubclass(CapacityError, TCAMError)

    def test_catching_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise WorkloadError("boom")
