"""Runs the doctest examples embedded in module docstrings.

Keeps the inline usage examples honest: a doctest that drifts from the
implementation fails the suite.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.analytic
import repro.core.segmentation
import repro.devices.cards
import repro.energy.accounting
import repro.tcam.area
import repro.tcam.priority
import repro.tcam.trit
import repro.units
import repro.workloads.packetclass

MODULES = [
    repro.units,
    repro.energy.accounting,
    repro.tcam.trit,
    repro.tcam.area,
    repro.tcam.priority,
    repro.core.segmentation,
    repro.workloads.packetclass,
    repro.analysis.analytic,
    repro.devices.cards,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
