"""Executes every snippet of docs/TUTORIAL.md so the tutorial cannot rot."""

from __future__ import annotations

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def _snippets() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestTutorial:
    def test_tutorial_exists_with_snippets(self):
        assert TUTORIAL.exists()
        assert len(_snippets()) >= 7

    def test_all_snippets_execute_in_order(self):
        """Snippets share one namespace (like a reader's REPL session)."""
        namespace: dict = {}
        for i, snippet in enumerate(_snippets()):
            try:
                exec(compile(snippet, f"<tutorial snippet {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic path
                pytest.fail(f"tutorial snippet {i} failed: {exc}\n---\n{snippet}")
