"""Tests for repro.units."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    FEMTO,
    NANO,
    PICO,
    celsius_to_kelvin,
    db,
    eng,
    parallel,
    thermal_voltage,
)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(2 * thermal_voltage(300.0))

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)
        with pytest.raises(ValueError):
            thermal_voltage(-10.0)


class TestEng:
    def test_femto(self):
        assert eng(1.5 * FEMTO, "F") == "1.5 fF"

    def test_pico_negative(self):
        assert eng(-2.2 * PICO, "s", digits=2) == "-2.2 ps"

    def test_zero(self):
        assert eng(0.0, "J") == "0 J"

    def test_unitless(self):
        assert eng(2.5 * NANO) == "2.5 n"

    def test_large_values_clamp_at_tera(self):
        assert "T" in eng(5e14, "Hz")

    def test_infinity_passes_through(self):
        assert "inf" in eng(math.inf, "s")

    @given(st.floats(min_value=1e-17, max_value=1e13))
    def test_output_parses_back_to_same_magnitude(self, value):
        text = eng(value, "", digits=9)
        number = float(text.split()[0]) if " " in text else float(text.rstrip("afpnumkMGT "))
        prefix_scale = {
            "a": 1e-18, "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
            "m": 1e-3, "": 1.0, "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
        }
        parts = text.split()
        scale = prefix_scale[parts[1]] if len(parts) > 1 else 1.0
        assert number * scale == pytest.approx(value, rel=1e-6)


class TestDb:
    def test_power_ratio(self):
        assert db(100.0) == pytest.approx(20.0)

    def test_unity(self):
        assert db(1.0) == pytest.approx(0.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            db(0.0)


class TestParallel:
    def test_two_equal(self):
        assert parallel(2.0, 2.0) == pytest.approx(1.0)

    def test_infinite_branch_ignored(self):
        assert parallel(5.0, math.inf) == pytest.approx(5.0)

    def test_short_circuit_wins(self):
        assert parallel(5.0, 0.0) == 0.0

    def test_all_infinite_is_infinite(self):
        assert parallel(math.inf, math.inf) == math.inf

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parallel(-1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parallel()

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=6))
    def test_result_below_minimum_branch(self, rs):
        assert parallel(*rs) <= min(rs) * (1.0 + 1e-9)


class TestCelsius:
    def test_room(self):
        assert celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            celsius_to_kelvin(-300.0)
