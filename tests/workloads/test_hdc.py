"""Tests for the HDC associative-memory workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import WorkloadError
from repro.tcam import ArrayGeometry
from repro.workloads.hdc import HDCEncoder, HDCMemory

DIMS = 128


def _encoder(seed=0) -> HDCEncoder:
    return HDCEncoder(
        dimensions=DIMS, n_features=16, n_levels=8, rng=np.random.default_rng(seed)
    )


def _memory(threshold=0.0) -> HDCMemory:
    array = build_array(get_design("fefet2t"), ArrayGeometry(8, DIMS))
    return HDCMemory(array, confidence_threshold=threshold)


def _train(mem: HDCMemory, enc: HDCEncoder, rng, n_classes=4, n_examples=5):
    centers = {}
    for label in range(n_classes):
        center = rng.integers(0, 8, size=16)
        examples = np.stack(
            [
                enc.encode(np.clip(center + rng.integers(-1, 2, 16), 0, 7))
                for _ in range(n_examples)
            ]
        )
        mem.train_class(label, examples)
        centers[label] = center
    return centers


class TestEncoder:
    def test_output_binary_with_right_shape(self, rng):
        enc = _encoder()
        hv = enc.encode(np.zeros(16, dtype=int))
        assert hv.shape == (DIMS,)
        assert set(np.unique(hv)) <= {0, 1}

    def test_deterministic(self):
        a = _encoder(seed=1).encode(np.arange(16) % 8)
        b = _encoder(seed=1).encode(np.arange(16) % 8)
        assert np.array_equal(a, b)

    def test_nearby_levels_similar(self):
        enc = _encoder()
        f = np.full(16, 3)
        base = enc.encode(f)
        near = enc.encode(np.where(np.arange(16) == 0, 4, f))
        far = enc.encode(np.full(16, 7))
        d_near = np.count_nonzero(base != near)
        d_far = np.count_nonzero(base != far)
        assert d_near < d_far

    def test_rejects_bad_features(self):
        enc = _encoder()
        with pytest.raises(WorkloadError):
            enc.encode(np.full(16, 9))
        with pytest.raises(WorkloadError):
            enc.encode(np.zeros(5, dtype=int))

    def test_rejects_tiny_dimensions(self):
        with pytest.raises(WorkloadError):
            HDCEncoder(dimensions=4, n_features=2, n_levels=2, rng=np.random.default_rng(0))


class TestMemory:
    def test_classification_accuracy_on_noisy_queries(self, rng):
        enc = _encoder(seed=2)
        mem = _memory()
        centers = _train(mem, enc, rng)
        correct = 0
        total = 0
        for label, center in centers.items():
            for _ in range(5):
                noisy = np.clip(center + rng.integers(-1, 2, 16), 0, 7)
                result = mem.classify(enc.encode(noisy))
                correct += result.label == label
                total += 1
        assert correct / total >= 0.8

    def test_query_reports_energy(self, rng):
        enc = _encoder()
        mem = _memory()
        _train(mem, enc, rng)
        result = mem.classify(enc.encode(rng.integers(0, 8, 16)))
        assert result.energy > 0.0

    def test_confidence_threshold_introduces_x(self, rng):
        enc = _encoder(seed=3)
        strict = _memory(threshold=0.0)
        masked = _memory(threshold=0.4)
        _train(strict, enc, np.random.default_rng(5))
        _train(masked, enc, np.random.default_rng(5))
        assert strict.x_density() == 0.0
        assert masked.x_density() > 0.0

    def test_empty_memory_returns_none(self):
        mem = _memory()
        assert mem.classify(np.zeros(DIMS, dtype=np.int8)).label is None

    def test_capacity_enforced(self, rng):
        mem = _memory()
        for label in range(8):
            mem.train_class(label, np.zeros((2, DIMS), dtype=np.int8))
        with pytest.raises(WorkloadError):
            mem.train_class(9, np.zeros((2, DIMS), dtype=np.int8))

    def test_rejects_bad_example_shape(self):
        mem = _memory()
        with pytest.raises(WorkloadError):
            mem.train_class(0, np.zeros((2, 5), dtype=np.int8))

    def test_rejects_bad_query_shape(self, rng):
        enc = _encoder()
        mem = _memory()
        _train(mem, enc, rng, n_classes=1)
        with pytest.raises(WorkloadError):
            mem.classify(np.zeros(5, dtype=np.int8))

    def test_rejects_bad_threshold(self):
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, DIMS))
        with pytest.raises(WorkloadError):
            HDCMemory(array, confidence_threshold=1.5)
