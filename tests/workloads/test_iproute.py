"""Tests for the IP-routing workload, including the TCAM-vs-oracle check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import WorkloadError
from repro.tcam import ArrayGeometry
from repro.workloads.iproute import (
    Route,
    RoutingTable,
    synthetic_routing_table,
    trace_addresses,
)


class TestRoute:
    def test_covers_inside_prefix(self):
        r = Route(prefix=0xC0A80000, length=16, next_hop=1)  # 192.168/16
        assert r.covers(0xC0A80101)
        assert not r.covers(0xC0A90101)

    def test_default_route_covers_all(self):
        r = Route(prefix=0, length=0, next_hop=1)
        assert r.covers(0)
        assert r.covers(0xFFFFFFFF)

    def test_rejects_host_bits_below_mask(self):
        with pytest.raises(WorkloadError):
            Route(prefix=0xC0A80001, length=16, next_hop=1)

    def test_rejects_bad_length(self):
        with pytest.raises(WorkloadError):
            Route(prefix=0, length=33, next_hop=1)

    def test_word_has_prefix_specificity(self):
        r = Route(prefix=0xC0A80000, length=16, next_hop=1)
        w = r.to_word()
        assert w.specificity() == 16
        assert len(w) == 32


class TestRoutingTable:
    def test_sorted_longest_first(self):
        routes = [
            Route(prefix=0, length=0, next_hop=0),
            Route(prefix=0xC0A80000, length=16, next_hop=1),
            Route(prefix=0xC0A80100, length=24, next_hop=2),
        ]
        table = RoutingTable(routes)
        assert [r.length for r in table.routes] == [24, 16, 0]

    def test_reference_lpm_picks_longest(self):
        table = RoutingTable(
            [
                Route(prefix=0, length=0, next_hop=0),
                Route(prefix=0xC0A80000, length=16, next_hop=1),
                Route(prefix=0xC0A80100, length=24, next_hop=2),
            ]
        )
        hit = table.lookup_reference(0xC0A80142)
        assert hit is not None and hit.length == 24

    def test_reference_falls_back_to_default(self):
        table = RoutingTable(
            [
                Route(prefix=0, length=0, next_hop=0),
                Route(prefix=0xC0A80000, length=16, next_hop=1),
            ]
        )
        hit = table.lookup_reference(0x08080808)
        assert hit is not None and hit.length == 0

    def test_rejects_empty_table(self):
        with pytest.raises(WorkloadError):
            RoutingTable([])


class TestTCAMAgreement:
    @pytest.fixture(scope="class")
    def deployed(self):
        rng = np.random.default_rng(17)
        table = synthetic_routing_table(40, rng)
        array = build_array(get_design("fefet2t"), ArrayGeometry(64, 32))
        table.deploy(array)
        return table, array, rng

    def test_tcam_matches_oracle_on_trace(self, deployed):
        table, array, rng = deployed
        for addr in trace_addresses(table, 40, rng):
            via_tcam, outcome = table.lookup_tcam(array, addr)
            oracle = table.lookup_reference(addr)
            if oracle is None:
                assert via_tcam is None
            else:
                assert via_tcam is not None
                # Priority order guarantees equal prefix length (the specific
                # winning route may tie in length).
                assert via_tcam.length == oracle.length
                assert via_tcam.covers(addr)
            assert outcome.functional_errors == 0

    def test_deploy_rejects_wrong_width(self, deployed):
        table, _, _ = deployed
        narrow = build_array(get_design("fefet2t"), ArrayGeometry(64, 16))
        with pytest.raises(WorkloadError):
            table.deploy(narrow)

    def test_deploy_rejects_too_few_rows(self, deployed):
        table, _, _ = deployed
        tiny = build_array(get_design("fefet2t"), ArrayGeometry(8, 32))
        with pytest.raises(WorkloadError):
            table.deploy(tiny)


class TestSynthesis:
    def test_requested_route_count(self, rng):
        assert len(synthetic_routing_table(25, rng)) == 25

    def test_routes_unique(self, rng):
        table = synthetic_routing_table(50, rng)
        seen = {(r.prefix, r.length) for r in table.routes}
        assert len(seen) == 50

    def test_prefix_length_distribution_peaks_at_24(self, rng):
        table = synthetic_routing_table(400, rng)
        lengths = [r.length for r in table.routes]
        counts = {length: lengths.count(length) for length in set(lengths)}
        assert max(counts, key=counts.get) == 24

    def test_trace_hit_fraction(self, rng):
        table = synthetic_routing_table(30, rng)
        addrs = trace_addresses(table, 200, rng, hit_fraction=1.0)
        hits = sum(1 for a in addrs if table.lookup_reference(a) is not None)
        assert hits == 200

    def test_rejects_bad_args(self, rng):
        with pytest.raises(WorkloadError):
            synthetic_routing_table(0, rng)
        table = synthetic_routing_table(5, rng)
        with pytest.raises(WorkloadError):
            trace_addresses(table, 10, rng, hit_fraction=2.0)
