"""Tests for packet classification, especially range-to-prefix expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_array, get_design
from repro.errors import WorkloadError
from repro.tcam import ArrayGeometry
from repro.workloads.packetclass import (
    RULE_BITS,
    AclRule,
    Packet,
    RuleSet,
    random_packets,
    range_to_prefixes,
    synthetic_acl,
)


class TestRangeExpansion:
    def test_full_range_one_prefix(self):
        assert range_to_prefixes(0, 65535, 16) == [(0, 0)]

    def test_exact_value_full_length(self):
        assert range_to_prefixes(80, 80, 16) == [(80, 16)]

    def test_worst_case_bound(self):
        """Classic result: [1, 2^w - 2] expands to 2w - 2 prefixes."""
        assert len(range_to_prefixes(1, 65534, 16)) == 30

    def test_rejects_bad_range(self):
        with pytest.raises(WorkloadError):
            range_to_prefixes(10, 5, 16)

    @given(
        lo=st.integers(min_value=0, max_value=65535),
        span=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cover_is_exact_partition(self, lo, span):
        """Every value in the range is covered exactly once, nothing outside."""
        hi = min(lo + span, 65535)
        prefixes = range_to_prefixes(lo, hi, 16)
        covered = 0
        for value, length in prefixes:
            block = 1 << (16 - length)
            assert value % block == 0  # aligned
            assert lo <= value and value + block - 1 <= hi
            covered += block
        assert covered == hi - lo + 1


class TestRuleOracle:
    def test_exact_port_match(self):
        rule = AclRule(0, 0, 0, 0, 80, 80, None, 1)
        assert rule.matches(Packet(1, 2, 80, 6))
        assert not rule.matches(Packet(1, 2, 81, 6))

    def test_prefix_filters(self):
        rule = AclRule(0xC0A8, 16, 0, 0, 0, 65535, None, 1)
        assert rule.matches(Packet(0xC0A8, 0, 1, 6))
        assert not rule.matches(Packet(0xC0A9, 0, 1, 6))

    def test_proto_filter(self):
        rule = AclRule(0, 0, 0, 0, 0, 65535, 6, 1)
        assert rule.matches(Packet(0, 0, 0, 6))
        assert not rule.matches(Packet(0, 0, 0, 17))

    def test_rejects_bad_ports(self):
        with pytest.raises(WorkloadError):
            AclRule(0, 0, 0, 0, 100, 50, None, 1)


class TestRuleSet:
    def test_expansion_counts(self):
        rules = [
            AclRule(0, 0, 0, 0, 80, 80, None, 1),        # 1 row
            AclRule(0, 0, 0, 0, 1, 65534, None, 0),       # 30 rows
        ]
        rs = RuleSet(rules)
        assert rs.n_tcam_rows == 31
        assert rs.expansion_factor == pytest.approx(15.5)

    def test_first_match_semantics(self):
        rules = [
            AclRule(0, 0, 0, 0, 80, 80, None, 1),
            AclRule(0, 0, 0, 0, 0, 65535, None, 0),
        ]
        rs = RuleSet(rules)
        assert rs.classify_reference(Packet(0, 0, 80, 6)) == 0
        assert rs.classify_reference(Packet(0, 0, 81, 6)) == 1

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            RuleSet([])


class TestTCAMAgreement:
    @pytest.fixture(scope="class")
    def deployed(self):
        rng = np.random.default_rng(23)
        acl = synthetic_acl(15, rng)
        rows = max(64, acl.n_tcam_rows)
        array = build_array(get_design("fefet2t"), ArrayGeometry(rows, RULE_BITS))
        acl.deploy(array)
        return acl, array, rng

    def test_tcam_matches_oracle(self, deployed):
        acl, array, rng = deployed
        for packet in random_packets(acl, 30, rng):
            via_tcam, outcome = acl.classify_tcam(array, packet)
            assert via_tcam == acl.classify_reference(packet)
            assert outcome.functional_errors == 0

    def test_deploy_rejects_wrong_width(self, deployed):
        acl, _, _ = deployed
        wrong = build_array(get_design("fefet2t"), ArrayGeometry(64, 32))
        with pytest.raises(WorkloadError):
            acl.deploy(wrong)


class TestSynthesis:
    def test_rule_count(self, rng):
        assert len(synthetic_acl(12, rng).rules) == 12

    def test_expansion_factor_above_one(self, rng):
        acl = synthetic_acl(40, rng)
        assert acl.expansion_factor >= 1.0

    def test_hit_fraction_one_always_matches(self, rng):
        acl = synthetic_acl(10, rng)
        packets = random_packets(acl, 50, rng, hit_fraction=1.0)
        assert all(acl.classify_reference(p) is not None for p in packets)

    def test_rejects_bad_counts(self, rng):
        with pytest.raises(WorkloadError):
            synthetic_acl(0, rng)
