"""Tests for the pattern generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    PatternStream,
    biased_key_stream,
    planted_key,
    random_table,
)


class TestRandomTable:
    def test_shape(self, rng):
        table = random_table(10, 16, rng)
        assert len(table) == 10
        assert all(len(w) == 16 for w in table)

    def test_x_fraction_statistics(self, rng):
        table = random_table(200, 32, rng, x_fraction=0.3)
        x_frac = np.mean([w.x_count() / 32 for w in table])
        assert x_frac == pytest.approx(0.3, abs=0.03)

    def test_rejects_empty(self, rng):
        with pytest.raises(WorkloadError):
            random_table(0, 16, rng)


class TestPatternStream:
    def test_full_flip_probability_changes_keys(self, rng):
        stream = PatternStream(cols=32, flip_probability=1.0, rng=rng)
        a = stream.next_key()
        b = stream.next_key()
        # Every column flips: b is the exact complement of a.
        assert all(x is not y for x, y in zip(a, b))

    def test_zero_flip_probability_repeats_key(self, rng):
        stream = PatternStream(cols=16, flip_probability=0.0, rng=rng)
        assert stream.next_key() == stream.next_key()

    def test_keys_fully_specified(self, rng):
        stream = PatternStream(cols=16, flip_probability=0.5, rng=rng)
        assert all(k.x_count() == 0 for k in stream.keys(5))

    def test_flip_statistics(self, rng):
        stream = PatternStream(cols=64, flip_probability=0.25, rng=rng)
        prev = stream.next_key()
        flips = 0
        n = 100
        for _ in range(n):
            cur = stream.next_key()
            flips += sum(1 for a, b in zip(prev, cur) if a is not b)
            prev = cur
        assert flips / (n * 64) == pytest.approx(0.25, abs=0.03)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(WorkloadError):
            PatternStream(cols=4, flip_probability=1.5, rng=rng)

    def test_rejects_negative_count(self, rng):
        stream = PatternStream(cols=4, flip_probability=0.5, rng=rng)
        with pytest.raises(WorkloadError):
            stream.keys(-1)

    def test_biased_wrapper(self, rng):
        keys = biased_key_stream(16, 7, rng)
        assert len(keys) == 7


class TestPlantedKey:
    def test_planted_key_matches_some_row(self, rng):
        table = random_table(10, 16, rng, x_fraction=0.4)
        for _ in range(10):
            key = planted_key(table, rng)
            assert key.x_count() == 0
            assert any(w.matches(key) for w in table)

    def test_rejects_empty_table(self, rng):
        with pytest.raises(WorkloadError):
            planted_key([], rng)
