"""Corpus retrieval workload: recall vs the exact numpy oracle.

The sharded TCAM index must reproduce the exact top-k (per-shard top-k
merged on ``(distance, global row)`` is lossless), and the tolerance
sweep must behave like the physics says: recall grows monotonically
with the tolerance, reaches 1.0 at full width, and spends less energy
per query than the exhaustive exact-match baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.retrieval import (
    CorpusConfig,
    RetrievalIndex,
    exact_topk,
    hamming_distances,
    make_queries,
    recall_at_k,
    run_retrieval,
    synthetic_corpus,
)


def _small_setup(n_entries=300, dims=24, n_queries=6, seed=5):
    config = CorpusConfig(
        n_entries=n_entries, dims=dims, n_clusters=20,
        cluster_spread=3, query_noise=2,
    )
    signatures = synthetic_corpus(config, seed=seed)
    queries, source = make_queries(signatures, n_queries, 2, seed=seed + 1)
    return signatures, queries, source


class TestOracle:
    def test_hamming_distances_match_bruteforce(self):
        signatures, queries, _ = _small_setup(n_entries=40, dims=16)
        dist = hamming_distances(signatures, queries)
        for q in range(queries.shape[0]):
            brute = (signatures != queries[q]).sum(axis=1)
            assert np.array_equal(dist[q], brute)

    def test_exact_topk_ordering(self):
        signatures, queries, _ = _small_setup(n_entries=50, dims=16)
        top = exact_topk(signatures, queries, 5)
        dist = hamming_distances(signatures, queries)
        for q in range(queries.shape[0]):
            d = dist[q][top[q]]
            assert np.all(np.diff(d) >= 0)  # ascending distance
            # Ties broken by ascending row index.
            for i in range(len(top[q]) - 1):
                if d[i] == d[i + 1]:
                    assert top[q][i] < top[q][i + 1]

    def test_queries_find_their_source(self):
        signatures, queries, source = _small_setup()
        top = exact_topk(signatures, queries, 1)
        dist = hamming_distances(signatures, queries)
        for q in range(queries.shape[0]):
            # The winner is at most query_noise bits away (the source).
            assert dist[q][top[q][0]] <= 2


class TestCorpusConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            CorpusConfig(n_entries=0)
        with pytest.raises(WorkloadError):
            CorpusConfig(n_entries=10, dims=4)
        with pytest.raises(WorkloadError):
            CorpusConfig(n_entries=10, cluster_spread=65)

    def test_corpus_is_deterministic(self):
        config = CorpusConfig(n_entries=100, dims=16)
        assert np.array_equal(
            synthetic_corpus(config, seed=3), synthetic_corpus(config, seed=3)
        )
        assert not np.array_equal(
            synthetic_corpus(config, seed=3), synthetic_corpus(config, seed=4)
        )


class TestRetrievalIndex:
    def test_rejects_non_binary_signatures(self):
        sigs = np.full((4, 16), 2, dtype=np.int8)
        with pytest.raises(WorkloadError):
            RetrievalIndex(sigs, bank_rows=4, banks_per_chip=2)

    def test_topk_is_exact(self):
        """Per-shard top-k merged globally reproduces the numpy oracle."""
        signatures, queries, _ = _small_setup()
        index = RetrievalIndex(signatures, bank_rows=64, banks_per_chip=3)
        truth = exact_topk(signatures, queries, 4)
        rows, dists, stats = index.query_topk(queries, 4)
        assert np.array_equal(rows, truth)
        oracle = hamming_distances(signatures, queries)
        for q in range(queries.shape[0]):
            assert np.array_equal(dists[q], oracle[q][truth[q]])
        assert recall_at_k(rows, truth) == 1.0
        assert stats.energy_per_query > 0.0
        assert stats.latency_max >= stats.latency_mean > 0.0

    def test_threshold_candidates_match_oracle_exactly(self):
        signatures, queries, _ = _small_setup()
        index = RetrievalIndex(signatures, bank_rows=64, banks_per_chip=3)
        dist = hamming_distances(signatures, queries)
        for t in (0, 2, 5):
            candidates, _stats = index.query_threshold(queries, t)
            for q in range(queries.shape[0]):
                assert candidates[q] == set(np.flatnonzero(dist[q] <= t).tolist())

    def test_threshold_recall_monotone_and_saturates(self):
        signatures, queries, _ = _small_setup()
        index = RetrievalIndex(signatures, bank_rows=64, banks_per_chip=3)
        truth = exact_topk(signatures, queries, 3)
        recalls = []
        for t in (0, 2, 4, 8, 24):
            candidates, _ = index.query_threshold(queries, t)
            recalls.append(recall_at_k(candidates, truth))
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0  # t = dims accepts every row

    def test_kernel_and_scalar_paths_agree(self):
        signatures, queries, _ = _small_setup(n_entries=120, dims=16)
        a = RetrievalIndex(signatures, bank_rows=32, banks_per_chip=2, use_kernel=True)
        b = RetrievalIndex(signatures, bank_rows=32, banks_per_chip=2, use_kernel=False)
        rows_a, dist_a, stats_a = a.query_topk(queries, 3)
        rows_b, dist_b, stats_b = b.query_topk(queries, 3)
        assert np.array_equal(rows_a, rows_b)
        assert np.array_equal(dist_a, dist_b)
        assert stats_a.energy_total == stats_b.energy_total
        assert stats_a.latency_mean == stats_b.latency_mean
        cand_a, th_a = a.query_threshold(queries, 3)
        cand_b, th_b = b.query_threshold(queries, 3)
        assert cand_a == cand_b
        assert th_a.energy_total == th_b.energy_total


class TestRunRetrieval:
    def _run(self, **overrides):
        params = dict(
            n_entries=600,
            dims=32,
            n_queries=8,
            k=4,
            thresholds=(2, 6, 10, 32),
            bank_rows=64,
            banks_per_chip=4,
            seed=11,
        )
        params.update(overrides)
        return run_retrieval(**params)

    def test_record_shape_and_recall_energy_frontier(self):
        record = self._run()
        assert record["topk"]["recall_at_k"] == 1.0
        assert record["n_banks"] == -(-600 // 64)
        sweep = record["threshold_sweep"]
        recalls = [row["recall_at_k"] for row in sweep]
        assert recalls == sorted(recalls)
        # Some swept tolerance reaches high recall *below* the
        # exhaustive exact-search energy -- the paper's frontier claim.
        assert any(
            row["recall_at_k"] >= 0.9 and row["energy_vs_exact_baseline"] < 1.0
            for row in sweep
        )
        assert record["exact_baseline"]["energy_per_query"] > 0.0

    def test_deterministic(self):
        assert self._run() == self._run()
