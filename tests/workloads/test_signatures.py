"""Tests for the signature-scanning workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_array, get_design
from repro.errors import WorkloadError
from repro.tcam import ArrayGeometry
from repro.workloads.signatures import (
    Signature,
    SignatureSet,
    plant_signatures,
    synthetic_signatures,
    window_key,
)


class TestSignature:
    def test_exact_match(self):
        sig = Signature(sig_id=1, pattern=(0xDE, 0xAD, 0xBE, 0xEF))
        assert sig.matches_at(b"\x00\xde\xad\xbe\xef", 1)
        assert not sig.matches_at(b"\x00\xde\xad\xbe\xee", 1)

    def test_wildcard_byte_matches_anything(self):
        sig = Signature(sig_id=1, pattern=(0xDE, None, 0xEF))
        assert sig.matches_at(b"\xde\x42\xef", 0)
        assert sig.matches_at(b"\xde\x00\xef", 0)

    def test_out_of_bounds_never_matches(self):
        sig = Signature(sig_id=1, pattern=(0xDE, 0xAD))
        assert not sig.matches_at(b"\xde", 0)

    def test_word_width_and_padding(self):
        sig = Signature(sig_id=1, pattern=(0xFF,))
        word = sig.to_word(window_bytes=4)
        assert len(word) == 36  # nine trits per byte (valid lane + data)
        assert word.x_count() == 27  # three fully padded bytes

    def test_wildcard_byte_still_requires_presence(self):
        """A wildcard byte stores valid=1: it matches any byte but not a
        missing one."""
        sig = Signature(sig_id=1, pattern=(0xAA, None))
        word = sig.to_word(window_bytes=2)
        from repro.tcam.trit import Trit

        assert word[9] is Trit.ONE  # the wildcard byte's valid lane
        assert word[10:18].x_count() == 8

    def test_rejects_all_wildcards(self):
        with pytest.raises(WorkloadError):
            Signature(sig_id=1, pattern=(None, None))

    def test_rejects_bad_byte(self):
        with pytest.raises(WorkloadError):
            Signature(sig_id=1, pattern=(300,))

    def test_rejects_signature_longer_than_window(self):
        sig = Signature(sig_id=1, pattern=(1, 2, 3))
        with pytest.raises(WorkloadError):
            sig.to_word(window_bytes=2)


class TestWindowKey:
    def test_encodes_bytes_msb_first_with_valid_lane(self):
        key = window_key(b"\x80", 0, 1)
        assert str(key) == "110000000"

    def test_tail_beyond_payload_searches_invalid(self):
        key = window_key(b"\xff", 0, 2)
        from repro.tcam.trit import Trit

        assert key[9] is Trit.ZERO  # past-end valid lane searches 0
        assert key.x_count() == 8  # its data bits are masked

    def test_rejects_bad_position(self):
        with pytest.raises(WorkloadError):
            window_key(b"ab", 2, 1)

    def test_truncated_signature_never_matches_at_boundary(self):
        """Regression: a window hanging off the payload end must not let a
        long signature match on its missing bytes."""
        sig = Signature(sig_id=5, pattern=(0xAB, 0xCD, 0xEF))
        word = sig.to_word(window_bytes=4)
        key = window_key(b"\xab", 0, 4)  # only the first byte exists
        assert not word.matches(key)


class TestScanAgreement:
    @pytest.fixture(scope="class")
    def deployed(self):
        rng = np.random.default_rng(61)
        signatures = synthetic_signatures(12, rng, min_bytes=3, max_bytes=6)
        sigset = SignatureSet(signatures, window_bytes=6)
        array = build_array(
            get_design("fefet2t"), ArrayGeometry(16, sigset.word_width)
        )
        sigset.deploy(array)
        payload = bytearray(rng.integers(0, 256, size=120).astype(np.uint8).tobytes())
        payload = bytearray(
            plant_signatures(payload, signatures, [(0, 10), (3, 50), (7, 90)])
        )
        return sigset, array, bytes(payload)

    def test_tcam_matches_oracle(self, deployed):
        sigset, array, payload = deployed
        tcam_hits, energy = sigset.scan_tcam(array, payload)
        assert tcam_hits == sigset.scan_reference(payload)
        assert energy > 0.0

    def test_planted_signatures_found(self, deployed):
        sigset, array, payload = deployed
        hits, _ = sigset.scan_tcam(array, payload)
        positions = {h.position for h in hits}
        assert {10, 50, 90} <= positions

    def test_clean_payload_no_false_hits(self):
        rng = np.random.default_rng(62)
        sig = Signature(sig_id=9, pattern=(0xCA, 0xFE, 0xBA, 0xBE, 0xD0, 0x0D))
        sigset = SignatureSet([sig], window_bytes=6)
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, sigset.word_width))
        sigset.deploy(array)
        payload = bytes(rng.integers(0, 128, size=200).astype(np.uint8).tobytes())
        hits, _ = sigset.scan_tcam(array, payload)
        assert hits == sigset.scan_reference(payload)

    def test_scan_energy_in_random_key_envelope(self, deployed):
        """A sliding window *shifts* the data, so its keys toggle almost as
        much as independent ones -- the per-search energy must land in the
        same envelope, not an order of magnitude away."""
        sigset, _, payload = deployed
        from repro.tcam.trit import random_word

        array_a = build_array(get_design("fefet2t"), ArrayGeometry(16, sigset.word_width))
        sigset.deploy(array_a)
        _, sliding_energy = sigset.scan_tcam(array_a, payload)
        sliding_per_search = sliding_energy / len(payload)

        array_b = build_array(get_design("fefet2t"), ArrayGeometry(16, sigset.word_width))
        sigset.deploy(array_b)
        rng = np.random.default_rng(63)
        random_energy = sum(
            array_b.search(random_word(sigset.word_width, rng)).energy_total
            for _ in range(len(payload))
        )
        random_per_search = random_energy / len(payload)
        assert 0.7 * random_per_search < sliding_per_search < 1.1 * random_per_search


class TestValidation:
    def test_empty_set_rejected(self):
        with pytest.raises(WorkloadError):
            SignatureSet([], window_bytes=4)

    def test_window_too_small_rejected(self):
        sig = Signature(sig_id=1, pattern=(1, 2, 3, 4, 5))
        with pytest.raises(WorkloadError):
            SignatureSet([sig], window_bytes=4)

    def test_deploy_rejects_wrong_width(self):
        sig = Signature(sig_id=1, pattern=(1, 2))
        sigset = SignatureSet([sig], window_bytes=4)
        array = build_array(get_design("fefet2t"), ArrayGeometry(4, 16))
        with pytest.raises(WorkloadError):
            sigset.deploy(array)

    def test_plant_rejects_overflow(self):
        sig = Signature(sig_id=0, pattern=(1, 2, 3))
        with pytest.raises(WorkloadError):
            plant_signatures(bytearray(4), [sig], [(0, 2)])

    def test_synthetic_rejects_bad_args(self, rng):
        with pytest.raises(WorkloadError):
            synthetic_signatures(0, rng)
        with pytest.raises(WorkloadError):
            synthetic_signatures(3, rng, min_bytes=5, max_bytes=4)

    def test_synthetic_edges_always_specified(self, rng):
        for sig in synthetic_signatures(30, rng, wildcard_fraction=0.9):
            assert sig.pattern[0] is not None
            assert sig.pattern[-1] is not None
